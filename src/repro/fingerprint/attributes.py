"""Browser fingerprint attribute registry.

The paper instruments its honey site with FingerprintJS and HTTP headers,
collecting roughly 30 attributes per request (Section 4.4).  This module
defines the canonical attribute names used throughout the library, the type
of value each attribute carries, and whether the attribute is *immutable*
for a given physical device (the property exploited by the temporal
inconsistency analysis in Section 7.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple


class Attribute(str, enum.Enum):
    """Canonical fingerprint attribute names.

    The member value is the snake_case key used when a fingerprint is
    serialised to a dictionary.  Members are grouped to mirror the sources
    the paper reads them from (User-Agent, FingerprintJS APIs, HTTP/IP).
    """

    # -- User-Agent derived -------------------------------------------------
    USER_AGENT = "user_agent"
    UA_DEVICE = "ua_device"
    UA_OS = "ua_os"
    UA_BROWSER = "ua_browser"

    # -- navigator object ---------------------------------------------------
    PLATFORM = "platform"
    VENDOR = "vendor"
    VENDOR_FLAVORS = "vendor_flavors"
    PLUGINS = "plugins"
    HARDWARE_CONCURRENCY = "hardware_concurrency"
    DEVICE_MEMORY = "device_memory"
    LANGUAGES = "languages"
    WEBDRIVER = "webdriver"
    PRODUCT_SUB = "product_sub"
    MAX_TOUCH_POINTS = "max_touch_points"

    # -- screen -------------------------------------------------------------
    SCREEN_RESOLUTION = "screen_resolution"
    SCREEN_FRAME = "screen_frame"
    COLOR_DEPTH = "color_depth"
    COLOR_GAMUT = "color_gamut"
    TOUCH_SUPPORT = "touch_support"
    HDR = "hdr"
    CONTRAST = "contrast"
    FORCED_COLORS = "forced_colors"
    REDUCED_MOTION = "reduced_motion"
    INVERTED_COLORS = "inverted_colors"
    MONOCHROME = "monochrome"

    # -- rendering / misc FingerprintJS attributes ---------------------------
    CANVAS = "canvas"
    AUDIO = "audio"
    FONTS = "fonts"
    FONT_PREFERENCES = "font_preferences"
    TIMEZONE = "timezone"
    TIMEZONE_OFFSET = "timezone_offset"
    SESSION_STORAGE = "session_storage"
    LOCAL_STORAGE = "local_storage"
    INDEXED_DB = "indexed_db"
    OPEN_DATABASE = "open_database"
    COOKIES_ENABLED = "cookies_enabled"
    PDF_VIEWER_ENABLED = "pdf_viewer_enabled"
    MONOSPACE_WIDTH = "monospace_width"

    # -- network / transport --------------------------------------------------
    IP_ADDRESS = "ip_address"
    IP_COUNTRY = "ip_country"
    IP_REGION = "ip_region"
    ASN = "asn"
    ACCEPT_LANGUAGE = "accept_language"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ValueKind(enum.Enum):
    """Kind of value an attribute carries."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    STRING_LIST = "string_list"
    RESOLUTION = "resolution"


@dataclass(frozen=True)
class AttributeSpec:
    """Metadata describing one fingerprint attribute.

    Attributes
    ----------
    attribute:
        The canonical :class:`Attribute` member.
    kind:
        The :class:`ValueKind` of the values carried by the attribute.
    immutable:
        ``True`` when the value cannot change for a given physical device
        without deliberate tampering (e.g. ``platform``, CPU core count).
        Immutable attributes are the ones the temporal inconsistency
        detector tracks per cookie.
    source:
        Short description of the browser API or channel the attribute is
        read from, mirroring Table 5 of the paper.
    """

    attribute: Attribute
    kind: ValueKind
    immutable: bool
    source: str


_SPECS: Tuple[AttributeSpec, ...] = (
    AttributeSpec(Attribute.USER_AGENT, ValueKind.STRING, False, "navigator.userAgent"),
    AttributeSpec(Attribute.UA_DEVICE, ValueKind.STRING, True, "parsed from User-Agent"),
    AttributeSpec(Attribute.UA_OS, ValueKind.STRING, True, "parsed from User-Agent"),
    AttributeSpec(Attribute.UA_BROWSER, ValueKind.STRING, False, "parsed from User-Agent"),
    AttributeSpec(Attribute.PLATFORM, ValueKind.STRING, True, "navigator.platform"),
    AttributeSpec(Attribute.VENDOR, ValueKind.STRING, True, "navigator.vendor"),
    AttributeSpec(Attribute.VENDOR_FLAVORS, ValueKind.STRING_LIST, False, "vendor-specific window properties"),
    AttributeSpec(Attribute.PLUGINS, ValueKind.STRING_LIST, False, "navigator.plugins"),
    AttributeSpec(Attribute.HARDWARE_CONCURRENCY, ValueKind.INTEGER, True, "navigator.hardwareConcurrency"),
    AttributeSpec(Attribute.DEVICE_MEMORY, ValueKind.FLOAT, True, "navigator.deviceMemory"),
    AttributeSpec(Attribute.LANGUAGES, ValueKind.STRING_LIST, False, "navigator.languages"),
    AttributeSpec(Attribute.WEBDRIVER, ValueKind.BOOLEAN, False, "navigator.webdriver"),
    AttributeSpec(Attribute.PRODUCT_SUB, ValueKind.STRING, True, "navigator.productSub"),
    AttributeSpec(Attribute.MAX_TOUCH_POINTS, ValueKind.INTEGER, True, "navigator.maxTouchPoints"),
    AttributeSpec(Attribute.SCREEN_RESOLUTION, ValueKind.RESOLUTION, True, "window.screen"),
    AttributeSpec(Attribute.SCREEN_FRAME, ValueKind.INTEGER, False, "screen frame (available vs full screen)"),
    AttributeSpec(Attribute.COLOR_DEPTH, ValueKind.INTEGER, True, "window.screen.colorDepth"),
    AttributeSpec(Attribute.COLOR_GAMUT, ValueKind.STRING, True, "CSS media query color-gamut"),
    AttributeSpec(Attribute.TOUCH_SUPPORT, ValueKind.STRING, True, "ontouchstart / TouchEvent"),
    AttributeSpec(Attribute.HDR, ValueKind.BOOLEAN, True, "CSS media query dynamic-range"),
    AttributeSpec(Attribute.CONTRAST, ValueKind.INTEGER, False, "CSS media query prefers-contrast"),
    AttributeSpec(Attribute.FORCED_COLORS, ValueKind.BOOLEAN, False, "CSS media query forced-colors"),
    AttributeSpec(Attribute.REDUCED_MOTION, ValueKind.BOOLEAN, False, "CSS media query prefers-reduced-motion"),
    AttributeSpec(Attribute.INVERTED_COLORS, ValueKind.BOOLEAN, False, "CSS media query inverted-colors"),
    AttributeSpec(Attribute.MONOCHROME, ValueKind.INTEGER, True, "CSS media query monochrome"),
    AttributeSpec(Attribute.CANVAS, ValueKind.STRING, False, "HTMLCanvasElement.getContext"),
    AttributeSpec(Attribute.AUDIO, ValueKind.FLOAT, False, "OfflineAudioContext"),
    AttributeSpec(Attribute.FONTS, ValueKind.STRING_LIST, False, "font enumeration via measurement"),
    AttributeSpec(Attribute.FONT_PREFERENCES, ValueKind.STRING, False, "default font metrics"),
    AttributeSpec(Attribute.TIMEZONE, ValueKind.STRING, False, "Intl.DateTimeFormat / getTimezoneOffset"),
    AttributeSpec(Attribute.TIMEZONE_OFFSET, ValueKind.INTEGER, False, "Date.prototype.getTimezoneOffset"),
    AttributeSpec(Attribute.SESSION_STORAGE, ValueKind.BOOLEAN, False, "window.sessionStorage"),
    AttributeSpec(Attribute.LOCAL_STORAGE, ValueKind.BOOLEAN, False, "window.localStorage"),
    AttributeSpec(Attribute.INDEXED_DB, ValueKind.BOOLEAN, False, "window.indexedDB"),
    AttributeSpec(Attribute.OPEN_DATABASE, ValueKind.BOOLEAN, False, "window.openDatabase"),
    AttributeSpec(Attribute.COOKIES_ENABLED, ValueKind.BOOLEAN, False, "navigator.cookieEnabled"),
    AttributeSpec(Attribute.PDF_VIEWER_ENABLED, ValueKind.BOOLEAN, False, "navigator.pdfViewerEnabled"),
    AttributeSpec(Attribute.MONOSPACE_WIDTH, ValueKind.FLOAT, False, "measured monospace glyph width"),
    AttributeSpec(Attribute.IP_ADDRESS, ValueKind.STRING, False, "connection source address"),
    AttributeSpec(Attribute.IP_COUNTRY, ValueKind.STRING, False, "GeoLite2 lookup of source address"),
    AttributeSpec(Attribute.IP_REGION, ValueKind.STRING, False, "GeoLite2 lookup of source address"),
    AttributeSpec(Attribute.ASN, ValueKind.INTEGER, False, "GeoLite2 ASN lookup of source address"),
    AttributeSpec(Attribute.ACCEPT_LANGUAGE, ValueKind.STRING, False, "Accept-Language header"),
)

ATTRIBUTE_SPECS: Dict[Attribute, AttributeSpec] = {spec.attribute: spec for spec in _SPECS}

#: Attributes whose value cannot change for one physical device.  These are
#: the attributes the temporal inconsistency detector monitors per cookie.
IMMUTABLE_ATTRIBUTES: Tuple[Attribute, ...] = tuple(
    spec.attribute for spec in _SPECS if spec.immutable
)


def spec_for(attribute: Attribute) -> AttributeSpec:
    """Return the :class:`AttributeSpec` for *attribute*."""

    return ATTRIBUTE_SPECS[attribute]


def is_immutable(attribute: Attribute) -> bool:
    """Return ``True`` when *attribute* cannot change for a real device."""

    return ATTRIBUTE_SPECS[attribute].immutable


def coerce_value(attribute: Attribute, value: Any) -> Any:
    """Coerce *value* to the canonical Python type for *attribute*.

    The honey-site collector receives attribute values as strings or JSON
    scalars; this normalises them so that downstream grouping (the spatial
    miner buckets on exact values) is stable.

    Raises
    ------
    ValueError
        If the value cannot be represented in the attribute's kind.
    """

    if value is None:
        return None
    kind = ATTRIBUTE_SPECS[attribute].kind
    if kind is ValueKind.STRING:
        return str(value)
    if kind is ValueKind.INTEGER:
        return int(value)
    if kind is ValueKind.FLOAT:
        return float(value)
    if kind is ValueKind.BOOLEAN:
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "1", "yes"):
                return True
            if lowered in ("false", "0", "no", ""):
                return False
            raise ValueError(f"cannot interpret {value!r} as a boolean for {attribute}")
        return bool(value)
    if kind is ValueKind.STRING_LIST:
        if isinstance(value, str):
            return tuple(part for part in (p.strip() for p in value.split(",")) if part)
        return tuple(str(item) for item in value)
    if kind is ValueKind.RESOLUTION:
        return parse_resolution(value)
    raise ValueError(f"unsupported value kind {kind}")  # pragma: no cover - defensive


def parse_resolution(value: Any) -> Tuple[int, int]:
    """Parse a screen resolution into a ``(width, height)`` tuple.

    Accepts ``(w, h)`` sequences or strings such as ``"390x844"``.
    """

    if isinstance(value, (tuple, list)) and len(value) == 2:
        return int(value[0]), int(value[1])
    if isinstance(value, str):
        for separator in ("x", "X", "×"):
            if separator in value:
                width_text, height_text = value.split(separator, 1)
                return int(width_text.strip()), int(height_text.strip())
    raise ValueError(f"cannot parse screen resolution from {value!r}")


def format_resolution(resolution: Optional[Tuple[int, int]]) -> Optional[str]:
    """Format a ``(width, height)`` tuple as the conventional ``WxH`` string."""

    if resolution is None:
        return None
    return f"{resolution[0]}x{resolution[1]}"


def all_attributes() -> Iterable[Attribute]:
    """Iterate over every registered attribute."""

    return iter(ATTRIBUTE_SPECS)
