"""User-Agent synthesis and parsing.

The paper derives three attributes from the ``User-Agent`` header —
*UA Device*, *UA OS* and *UA Browser* — and uses them heavily in the
spatial inconsistency analysis (e.g. an ``iPhone`` User-Agent paired with a
``Win32`` platform).  Real parsers such as ``ua-parser`` are not available
offline, so this module implements a compact parser covering the device
families that appear in the paper's dataset (Table 6) plus a synthesiser
used by the device catalogue and the bot strategies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ParsedUserAgent:
    """Device, operating system and browser family parsed from a User-Agent."""

    device: str
    os: str
    browser: str

    def as_tuple(self) -> tuple:
        return (self.device, self.os, self.browser)


_MODEL_PATTERN = re.compile(r"Android [\d.]+; ([^);]+)")
_CRIOS_PATTERN = re.compile(r"CriOS/([\d.]+)")
_CHROME_PATTERN = re.compile(r"Chrome/([\d.]+)")
_FIREFOX_PATTERN = re.compile(r"Firefox/([\d.]+)")


def parse_user_agent(user_agent: Optional[str]) -> ParsedUserAgent:
    """Parse *user_agent* into coarse device / OS / browser families.

    The granularity matches what the paper reports: device values such as
    ``iPhone``, ``iPad``, ``Mac``, ``Windows PC`` or an Android model
    string; OS values such as ``iOS``, ``Mac OS X``, ``Windows``,
    ``Android``, ``Linux``; browser values such as ``Mobile Safari``,
    ``Chrome``, ``Chrome Mobile``, ``Chrome Mobile iOS``, ``Firefox``,
    ``Samsung Internet``, ``MiuiBrowser``.
    """

    if not user_agent:
        return ParsedUserAgent(device="Other", os="Other", browser="Other")

    ua = user_agent

    device = _parse_device(ua)
    os_family = _parse_os(ua)
    browser = _parse_browser(ua, device)
    return ParsedUserAgent(device=device, os=os_family, browser=browser)


def _parse_device(ua: str) -> str:
    if "iPhone" in ua:
        return "iPhone"
    if "iPad" in ua:
        return "iPad"
    if "Macintosh" in ua or "Mac OS X" in ua and "like Mac OS X" not in ua:
        return "Mac"
    if "Android" in ua:
        match = _MODEL_PATTERN.search(ua)
        if match:
            model = match.group(1).strip()
            # Strip build identifiers, e.g. "SM-A515F Build/RP1A" -> "SM-A515F".
            model = model.split(" Build")[0].strip()
            if model and model.lower() not in ("mobile", "tablet"):
                return model
        return "Android Device"
    if "Windows" in ua:
        return "Windows PC"
    if "CrOS" in ua:
        return "Chromebook"
    if "Linux" in ua or "X11" in ua:
        return "Linux PC"
    return "Other"


def _parse_os(ua: str) -> str:
    if "iPhone" in ua or "iPad" in ua or "like Mac OS X" in ua:
        return "iOS"
    if "Macintosh" in ua or "Mac OS X" in ua:
        return "Mac OS X"
    if "Android" in ua:
        return "Android"
    if "Windows" in ua:
        return "Windows"
    if "CrOS" in ua:
        return "Chrome OS"
    if "Linux" in ua or "X11" in ua:
        return "Linux"
    return "Other"


def _parse_browser(ua: str, device: str) -> str:
    if "SamsungBrowser" in ua:
        return "Samsung Internet"
    if "MiuiBrowser" in ua:
        return "MiuiBrowser"
    if "Edg/" in ua or "EdgA/" in ua or "EdgiOS/" in ua:
        return "Edge"
    if "OPR/" in ua or "Opera" in ua:
        return "Opera"
    if "CriOS" in ua:
        return "Chrome Mobile iOS"
    if "FxiOS" in ua:
        return "Firefox iOS"
    if "Firefox/" in ua:
        return "Firefox"
    if "Chrome/" in ua:
        if "Mobile" in ua:
            return "Chrome Mobile"
        return "Chrome"
    if "Safari/" in ua:
        if device in ("iPhone", "iPad") or "Mobile" in ua:
            return "Mobile Safari"
        return "Safari"
    if "HeadlessChrome" in ua:
        return "Headless Chrome"
    return "Other"


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------

_CHROME_VERSION = "118.0.0.0"
_SAFARI_WEBKIT = "605.1.15"
_FIREFOX_VERSION = "118.0"


def build_user_agent(
    device: str,
    os_family: str,
    browser: str,
    os_version: str = "",
    model: str = "",
) -> str:
    """Synthesise a plausible User-Agent string for the given families.

    The synthesiser is the inverse of :func:`parse_user_agent` for the
    device families used by the device catalogue and bot strategies; it is
    intentionally conservative so that ``parse_user_agent(build_user_agent(
    d, o, b)) == (d, o, b)`` for catalogue entries (a property the test
    suite checks).
    """

    if device == "iPhone":
        version = os_version or "16_6"
        if browser == "Chrome Mobile iOS":
            return (
                f"Mozilla/5.0 (iPhone; CPU iPhone OS {version} like Mac OS X) "
                f"AppleWebKit/{_SAFARI_WEBKIT} (KHTML, like Gecko) "
                f"CriOS/{_CHROME_VERSION} Mobile/15E148 Safari/604.1"
            )
        return (
            f"Mozilla/5.0 (iPhone; CPU iPhone OS {version} like Mac OS X) "
            f"AppleWebKit/{_SAFARI_WEBKIT} (KHTML, like Gecko) "
            f"Version/16.6 Mobile/15E148 Safari/604.1"
        )
    if device == "iPad":
        version = os_version or "16_6"
        return (
            f"Mozilla/5.0 (iPad; CPU OS {version} like Mac OS X) "
            f"AppleWebKit/{_SAFARI_WEBKIT} (KHTML, like Gecko) "
            f"Version/16.6 Mobile/15E148 Safari/604.1"
        )
    if device == "Mac":
        version = os_version or "10_15_7"
        if browser == "Safari":
            return (
                f"Mozilla/5.0 (Macintosh; Intel Mac OS X {version}) "
                f"AppleWebKit/{_SAFARI_WEBKIT} (KHTML, like Gecko) "
                f"Version/16.6 Safari/{_SAFARI_WEBKIT}"
            )
        if browser == "Firefox":
            return (
                f"Mozilla/5.0 (Macintosh; Intel Mac OS X {version}; rv:{_FIREFOX_VERSION}) "
                f"Gecko/20100101 Firefox/{_FIREFOX_VERSION}"
            )
        return (
            f"Mozilla/5.0 (Macintosh; Intel Mac OS X {version}) "
            f"AppleWebKit/537.36 (KHTML, like Gecko) "
            f"Chrome/{_CHROME_VERSION} Safari/537.36"
        )
    if device == "Windows PC":
        if browser == "Firefox":
            return (
                f"Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:{_FIREFOX_VERSION}) "
                f"Gecko/20100101 Firefox/{_FIREFOX_VERSION}"
            )
        if browser == "Edge":
            return (
                "Mozilla/5.0 (Windows NT 10.0; Win64; x64) "
                f"AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{_CHROME_VERSION} "
                f"Safari/537.36 Edg/{_CHROME_VERSION}"
            )
        return (
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) "
            f"AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{_CHROME_VERSION} Safari/537.36"
        )
    if device == "Linux PC":
        if browser == "Firefox":
            return (
                f"Mozilla/5.0 (X11; Linux x86_64; rv:{_FIREFOX_VERSION}) "
                f"Gecko/20100101 Firefox/{_FIREFOX_VERSION}"
            )
        return (
            "Mozilla/5.0 (X11; Linux x86_64) "
            f"AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{_CHROME_VERSION} Safari/537.36"
        )
    if os_family == "Android":
        model_text = model or device
        android_version = os_version or "13"
        if browser == "Samsung Internet":
            return (
                f"Mozilla/5.0 (Linux; Android {android_version}; {model_text}) "
                f"AppleWebKit/537.36 (KHTML, like Gecko) SamsungBrowser/22.0 "
                f"Chrome/{_CHROME_VERSION} Mobile Safari/537.36"
            )
        if browser == "MiuiBrowser":
            return (
                f"Mozilla/5.0 (Linux; U; Android {android_version}; {model_text}) "
                f"AppleWebKit/537.36 (KHTML, like Gecko) Version/4.0 "
                f"Chrome/{_CHROME_VERSION} Mobile Safari/537.36 "
                f"XiaoMi/MiuiBrowser/13.5"
            )
        return (
            f"Mozilla/5.0 (Linux; Android {android_version}; {model_text}) "
            f"AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{_CHROME_VERSION} "
            f"Mobile Safari/537.36"
        )
    # Fallback: a generic desktop Chrome UA.
    return (
        "Mozilla/5.0 (X11; Linux x86_64) "
        f"AppleWebKit/537.36 (KHTML, like Gecko) Chrome/{_CHROME_VERSION} Safari/537.36"
    )


def headless_user_agent() -> str:
    """User-Agent advertised by an unmodified headless Chromium."""

    return (
        "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) "
        f"HeadlessChrome/{_CHROME_VERSION} Safari/537.36"
    )
