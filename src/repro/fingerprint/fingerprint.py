"""The :class:`Fingerprint` record and its hashing.

A fingerprint is the set of attribute values collected for one request by
the honey site's FingerprintJS-style collector plus the values derived from
the transport layer (IP geolocation, ASN).  Fingerprints are immutable
mappings from :class:`~repro.fingerprint.attributes.Attribute` to values;
the bot strategies produce *altered* copies via :meth:`Fingerprint.replace`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.fingerprint.attributes import (
    Attribute,
    coerce_value,
    format_resolution,
)
from repro.fingerprint.useragent import ParsedUserAgent, parse_user_agent


class Fingerprint(Mapping[Attribute, Any]):
    """An immutable collection of fingerprint attribute values.

    Parameters
    ----------
    values:
        Mapping from :class:`Attribute` (or its string value) to the raw
        attribute value.  Values are coerced to their canonical types.

    Notes
    -----
    * Missing attributes read as ``None``.
    * ``Fingerprint`` is hashable: two fingerprints with the same attribute
      values share the same :meth:`stable_hash`, mirroring how the paper
      counts "unique fingerprints" in Figure 9.
    """

    __slots__ = ("_values", "_hash", "_grouping")

    def __init__(self, values: Mapping[Any, Any]):
        coerced: Dict[Attribute, Any] = {}
        for key, value in values.items():
            attribute = key if isinstance(key, Attribute) else Attribute(str(key))
            coerced_value = coerce_value(attribute, value)
            if isinstance(coerced_value, list):
                coerced_value = tuple(coerced_value)
            coerced[attribute] = coerced_value
        self._values: Dict[Attribute, Any] = coerced
        self._hash: Optional[str] = None
        self._grouping: Dict[Attribute, Any] = {}

    @classmethod
    def _from_coerced(cls, values: Dict[Attribute, Any]) -> "Fingerprint":
        """Wrap a dict whose values are already canonical, skipping coercion.

        Only for internal use by :meth:`replace` / :meth:`without`, whose
        inputs come from an existing fingerprint (coercion is idempotent on
        canonical values, so re-running it is pure overhead — and it
        dominated corpus-generation profiles).
        """

        instance = cls.__new__(cls)
        instance._values = values
        instance._hash = None
        instance._grouping = {}
        return instance

    # -- Mapping protocol ----------------------------------------------------

    def __getitem__(self, key: Attribute) -> Any:
        return self._values[key]

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: object) -> bool:
        return key in self._values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fingerprint):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self.stable_hash())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        device = self.get(Attribute.UA_DEVICE, "?")
        return f"Fingerprint(device={device!r}, hash={self.stable_hash()[:12]})"

    # -- convenience accessors -------------------------------------------------

    def get(self, key: Attribute, default: Any = None) -> Any:
        return self._values.get(key, default)

    @property
    def parsed_user_agent(self) -> ParsedUserAgent:
        """Parse the raw ``User-Agent`` carried by this fingerprint."""

        return parse_user_agent(self.get(Attribute.USER_AGENT))

    def value_for_grouping(self, attribute: Attribute) -> Any:
        """Return a hashable, human-readable value used by grouping code.

        Screen resolutions become ``"WxH"`` strings and attribute lists
        become comma-joined strings so that grouping keys are printable in
        tables exactly as the paper renders them.

        Grouping values are memoized per fingerprint: the miner, the filter
        list matcher and the temporal tracker all re-read the same handful
        of attributes, and the string formatting dominated their profiles.
        """

        try:
            return self._grouping[attribute]
        except KeyError:
            pass
        grouped = grouping_value(attribute, self.get(attribute))
        self._grouping[attribute] = grouped
        return grouped

    # -- derivation -------------------------------------------------------------

    def replace(self, **changes: Any) -> "Fingerprint":
        """Return a copy with attribute values replaced.

        Keyword names are the snake_case attribute keys (``Attribute``
        member values), e.g. ``fp.replace(hardware_concurrency=4)``.
        """

        updated: Dict[Attribute, Any] = dict(self._values)
        for key, value in changes.items():
            attribute = Attribute(key)
            coerced = coerce_value(attribute, value)
            if isinstance(coerced, list):
                coerced = tuple(coerced)
            updated[attribute] = coerced
        return Fingerprint._from_coerced(updated)

    def without(self, *attributes: Attribute) -> "Fingerprint":
        """Return a copy with *attributes* removed."""

        remaining = {
            key: value for key, value in self._values.items() if key not in attributes
        }
        return Fingerprint._from_coerced(remaining)

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dictionary keyed by attribute name."""

        result: Dict[str, Any] = {}
        for attribute, value in self._values.items():
            if isinstance(value, tuple):
                value = list(value)
            result[attribute.value] = value
        return result

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fingerprint":
        """Reconstruct a fingerprint from :meth:`to_dict` output."""

        return cls(data)

    def stable_hash(self) -> str:
        """A deterministic hex digest of the attribute values.

        This plays the role of the FingerprintJS ``visitorId``: requests
        whose collected attributes are identical hash to the same value.
        Transport-level attributes (IP address, geolocation, ASN) are
        excluded, matching FingerprintJS which only hashes browser-side
        signals.
        """

        if self._hash is None:
            browser_side = {
                attribute.value: value
                for attribute, value in self._values.items()
                if attribute
                not in (
                    Attribute.IP_ADDRESS,
                    Attribute.IP_COUNTRY,
                    Attribute.IP_REGION,
                    Attribute.ASN,
                )
            }
            payload = json.dumps(
                browser_side, sort_keys=True, default=_json_default, separators=(",", ":")
            )
            self._hash = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return self._hash


def grouping_value(attribute: Attribute, value: Any) -> Any:
    """The grouping form of one raw attribute *value*.

    The single source of truth behind
    :meth:`Fingerprint.value_for_grouping`; the columnar extractor calls it
    once per *distinct* raw value instead of once per request.
    """

    if value is None:
        return None
    if attribute is Attribute.SCREEN_RESOLUTION:
        return format_resolution(value)
    if isinstance(value, tuple):
        return ", ".join(str(item) for item in value) or "(none)"
    return value


def _json_default(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return str(value)


def fingerprint_distance(left: Fingerprint, right: Fingerprint) -> int:
    """Number of attributes whose values differ between two fingerprints.

    Attributes missing from either side count as differing unless missing
    from both.  Used by tests and by the analysis of fingerprint churn.
    """

    keys = set(left) | set(right)
    return sum(1 for key in keys if left.get(key) != right.get(key))
