"""Packaging for the reproduction toolkit.

``pip install -e .`` gives CI (and users) the ``repro`` package from the
``src/`` layout plus the ``repro`` console script, with no ``PYTHONPATH``
workaround.  Metadata lives here rather than in ``pyproject.toml`` so the
pinned setuptools in minimal environments can still build the project;
``pyproject.toml`` only declares the build system and lint configuration.
"""

from setuptools import find_packages, setup

setup(
    name="repro-fp-inconsistent",
    version="0.2.0",
    description=(
        "Reproduction of the FP-Inconsistent honey-site measurement study: "
        "bot-traffic corpus engine, anti-bot detector models and analyses"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
    ],
    extras_require={
        "test": ["pytest>=8", "pytest-benchmark>=5"],
        "lint": ["ruff>=0.4"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Security",
        "Topic :: Scientific/Engineering",
    ],
)
