"""Setup shim for environments without the ``wheel`` package.

The project is configured through ``pyproject.toml``; this file only exists
so that ``pip install -e . --no-build-isolation --config-settings
--build-option=...``-free legacy editable installs work offline.
"""

from setuptools import setup

setup()
