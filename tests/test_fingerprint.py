"""Unit tests for the Fingerprint record."""

import pytest

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint, fingerprint_distance


@pytest.fixture
def base_fingerprint():
    return Fingerprint(
        {
            Attribute.USER_AGENT: "Mozilla/5.0 (X11; Linux x86_64) Chrome/118.0.0.0",
            Attribute.UA_DEVICE: "Linux PC",
            Attribute.PLATFORM: "Linux x86_64",
            Attribute.HARDWARE_CONCURRENCY: 8,
            Attribute.SCREEN_RESOLUTION: (1920, 1080),
            Attribute.PLUGINS: ("PDF Viewer",),
            Attribute.WEBDRIVER: False,
            Attribute.IP_ADDRESS: "100.0.0.1",
        }
    )


def test_mapping_access(base_fingerprint):
    assert base_fingerprint[Attribute.HARDWARE_CONCURRENCY] == 8
    assert base_fingerprint.get(Attribute.VENDOR) is None
    assert Attribute.PLATFORM in base_fingerprint
    assert len(base_fingerprint) == 8


def test_accepts_string_keys():
    fingerprint = Fingerprint({"hardware_concurrency": "4", "platform": "Win32"})
    assert fingerprint[Attribute.HARDWARE_CONCURRENCY] == 4
    assert fingerprint[Attribute.PLATFORM] == "Win32"


def test_replace_returns_new_instance(base_fingerprint):
    altered = base_fingerprint.replace(hardware_concurrency=4)
    assert altered[Attribute.HARDWARE_CONCURRENCY] == 4
    assert base_fingerprint[Attribute.HARDWARE_CONCURRENCY] == 8
    assert altered is not base_fingerprint


def test_without_removes_attributes(base_fingerprint):
    trimmed = base_fingerprint.without(Attribute.PLUGINS, Attribute.WEBDRIVER)
    assert Attribute.PLUGINS not in trimmed
    assert Attribute.WEBDRIVER not in trimmed
    assert Attribute.PLATFORM in trimmed


def test_equality_and_hash(base_fingerprint):
    clone = Fingerprint(dict(base_fingerprint))
    assert clone == base_fingerprint
    assert hash(clone) == hash(base_fingerprint)
    assert clone.stable_hash() == base_fingerprint.stable_hash()


def test_stable_hash_changes_with_browser_attributes(base_fingerprint):
    altered = base_fingerprint.replace(hardware_concurrency=2)
    assert altered.stable_hash() != base_fingerprint.stable_hash()


def test_stable_hash_ignores_transport_attributes(base_fingerprint):
    altered = base_fingerprint.replace(ip_address="45.0.0.9")
    assert altered.stable_hash() == base_fingerprint.stable_hash()


def test_to_dict_from_dict_round_trip(base_fingerprint):
    rebuilt = Fingerprint.from_dict(base_fingerprint.to_dict())
    assert rebuilt == base_fingerprint


def test_value_for_grouping_formats_resolution(base_fingerprint):
    assert base_fingerprint.value_for_grouping(Attribute.SCREEN_RESOLUTION) == "1920x1080"


def test_value_for_grouping_joins_lists(base_fingerprint):
    assert base_fingerprint.value_for_grouping(Attribute.PLUGINS) == "PDF Viewer"
    empty = base_fingerprint.replace(plugins=())
    assert empty.value_for_grouping(Attribute.PLUGINS) == "(none)"


def test_value_for_grouping_missing_is_none(base_fingerprint):
    assert base_fingerprint.value_for_grouping(Attribute.VENDOR) is None


def test_parsed_user_agent(base_fingerprint):
    assert base_fingerprint.parsed_user_agent.os == "Linux"


def test_fingerprint_distance(base_fingerprint):
    assert fingerprint_distance(base_fingerprint, base_fingerprint) == 0
    altered = base_fingerprint.replace(hardware_concurrency=2, platform="Win32")
    assert fingerprint_distance(base_fingerprint, altered) == 2


def test_fingerprint_distance_counts_missing_attributes(base_fingerprint):
    trimmed = base_fingerprint.without(Attribute.PLUGINS)
    assert fingerprint_distance(base_fingerprint, trimmed) == 1
