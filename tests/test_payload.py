"""Tests for the columnar shard transport and the lazy request store.

Covers the PR-4 contract surface: payload round-trips are byte-identical
to the object path (records ↔ payload ↔ records), version-2 archives stay
readable, the lazy store answers splits and subsets exactly like an
object store, the fan-out clamp derives from the transport's transfer
cost, and the widened synthetic address space fails loudly instead of
silently colliding.
"""

from __future__ import annotations

import gzip
import json

import numpy as np
import pytest

from repro.analysis.cache import load_corpus, save_corpus
from repro.analysis.engine import (
    MIN_RECORDS_PER_WORKER,
    MIN_RECORDS_PER_WORKER_COLUMNAR,
    PAYLOAD_BYTES_PER_RECORD_CEILING,
    CorpusEngine,
    run_shard,
)
from repro.geo.asn import ASN_REGISTRY, AsnKind
from repro.geo.ipaddr import (
    DEFAULT_KIND_OCTET_RANGES,
    AddressSpaceExhausted,
    GEO_REGIONS,
    IpAddressSpace,
)
from repro.honeysite.storage import (
    LazyRequestStore,
    RecordColumns,
    RequestStore,
    StoreFormatError,
    split_rows,
)

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    include_privacy=True,
    real_user_requests=120,
    privacy_requests_each=12,
)


def record_dicts(store, drop_ids: bool = False):
    out = []
    for record in store:
        data = record.to_dict()
        if drop_ids:
            data["request"].pop("request_id")
        out.append(data)
    return out


@pytest.fixture(scope="module")
def columnar_corpus():
    """A corpus built over the columnar shard transport (the default)."""

    return CorpusEngine(**TINY).build(workers=1)


@pytest.fixture(scope="module")
def object_corpus():
    """The object-transport reference (legacy generation engine)."""

    return CorpusEngine(**TINY, generation="legacy").build(workers=1)


# -- records ↔ payload ↔ records byte identity -----------------------------------


def test_columnar_transport_is_byte_identical_to_object_transport(
    columnar_corpus, object_corpus
):
    assert isinstance(columnar_corpus.store, LazyRequestStore)
    assert not isinstance(object_corpus.store, LazyRequestStore)
    assert not columnar_corpus.store.materialized
    assert record_dicts(columnar_corpus.store) == record_dicts(object_corpus.store)
    assert columnar_corpus.store.materialized


def test_shard_payload_materialises_to_the_object_shard(columnar_corpus):
    spec = CorpusEngine(**TINY).plan()[3]
    columnar = run_shard(spec)
    legacy_spec = CorpusEngine(**TINY, generation="legacy").plan()[3]
    legacy = run_shard(legacy_spec)
    assert columnar.columns is not None and not columnar.records
    assert legacy.columns is None and legacy.records
    # Shard-local request ids come from a process-global counter on the
    # object path and a renumbered 1..n sequence on the columnar path —
    # everything else must match bit for bit.
    assert record_dicts(columnar.store(), drop_ids=True) == record_dicts(
        legacy.store(), drop_ids=True
    )


def test_record_columns_persistence_roundtrip(columnar_corpus):
    columns = columnar_corpus.store.columns
    arrays, meta = columns.to_payload()
    meta = json.loads(json.dumps(meta))  # the JSON boundary the archive crosses
    rebuilt = RecordColumns.from_payload(arrays, meta)
    assert record_dicts(LazyRequestStore(rebuilt)) == record_dicts(columnar_corpus.store)


def test_record_columns_validate_rejects_corruption(columnar_corpus):
    columns = columnar_corpus.store.columns
    arrays, meta = columns.to_payload()
    broken = dict(arrays)
    broken["served_codes"] = arrays["served_codes"].copy()
    broken["served_codes"][0] = len(columns.cookie_values) + 7
    with pytest.raises(StoreFormatError):
        RecordColumns.from_payload(broken, meta)
    truncated = dict(arrays)
    truncated["timestamps"] = arrays["timestamps"][:-1]
    with pytest.raises(StoreFormatError):
        RecordColumns.from_payload(truncated, meta)


def test_concat_rejects_conflicting_source_urls(columnar_corpus):
    columns = columnar_corpus.store.columns
    clone = columns.take(np.arange(columns.n_rows, dtype=np.int64))
    clone.url_paths = ["/different" + path for path in columns.url_paths]
    with pytest.raises(ValueError):
        RecordColumns.concat([columns, clone])


# -- lazy store equivalence -------------------------------------------------------


def test_lazy_store_is_immutable(columnar_corpus):
    with pytest.raises(TypeError):
        columnar_corpus.store.add(columnar_corpus.store[0])
    with pytest.raises(TypeError):
        columnar_corpus.store.extend([])
    # ...but copying into a plain store unlocks mutation
    copy = RequestStore(columnar_corpus.store)
    copy.add(columnar_corpus.store[0])
    assert len(copy) == len(columnar_corpus.store) + 1


def test_lazy_split_matches_object_split(columnar_corpus):
    lazy = columnar_corpus.store
    reference = RequestStore(list(lazy))
    lazy_a, lazy_b = lazy.split(0.8, np.random.default_rng(11))
    ref_a, ref_b = reference.split(0.8, np.random.default_rng(11))
    assert isinstance(lazy_a, LazyRequestStore) and not lazy_a.materialized
    assert record_dicts(lazy_a) == record_dicts(ref_a)
    assert record_dicts(lazy_b) == record_dicts(ref_b)
    # and the split rows themselves agree with the shared helper
    first, second = split_rows(len(reference), 0.8, np.random.default_rng(11))
    assert np.array_equal(lazy_a.request_id_array(), reference.request_id_array()[first])
    assert np.array_equal(lazy_b.request_id_array(), reference.request_id_array()[second])


def test_lazy_subsets_and_columns_match_object_store(columnar_corpus):
    lazy = columnar_corpus.store
    reference = RequestStore(list(lazy))
    assert lazy.sources() == reference.sources()
    for source in reference.sources()[:4]:
        assert record_dicts(lazy.by_source(source)) == record_dicts(
            reference.by_source(source)
        )
    two = set(reference.sources()[:2])
    assert record_dicts(lazy.by_sources(two)) == record_dicts(reference.by_sources(two))
    for detector in ("DataDome", "BotD"):
        assert np.array_equal(lazy.evaded_rows(detector), reference.evaded_rows(detector))
        assert lazy.evasion_rate(detector) == reference.evasion_rate(detector)
        assert record_dicts(lazy.evading(detector)) == record_dicts(
            reference.evading(detector)
        )
        assert record_dicts(lazy.detected_by(detector)) == record_dicts(
            reference.detected_by(detector)
        )
    assert np.array_equal(lazy.request_id_array(), reference.request_id_array())
    codes, names, index = lazy.source_rows()
    assert [names[code] for code in codes.tolist()] == [
        record.source for record in reference
    ]
    assert lazy.unique_ips() == reference.unique_ips()
    assert lazy.unique_cookies() == reference.unique_cookies()
    assert lazy.unique_fingerprints() == reference.unique_fingerprints()


def test_subset_stores_answer_without_materialising(columnar_corpus):
    bots = columnar_corpus.bot_store
    assert isinstance(bots, LazyRequestStore)
    assert len(bots) == sum(columnar_corpus.service_volumes.values())
    assert bots.evasion_rate("DataDome") >= 0.0
    assert not bots.materialized


# -- lazy store edges -------------------------------------------------------------


def empty_lazy_store() -> LazyRequestStore:
    from repro.honeysite.storage import RecordColumnsBuilder

    return LazyRequestStore(RecordColumnsBuilder().columns().renumbered())


def test_empty_lazy_store_answers_every_query(columnar_corpus):
    store = empty_lazy_store()
    assert len(store) == 0
    assert list(store) == []
    assert store.sources() == ()
    assert store.unique_ips() == store.unique_cookies() == store.unique_fingerprints() == 0
    assert store.request_id_array().size == 0
    for detector in ("DataDome", "BotD"):
        assert store.evaded_rows(detector).size == 0
        assert store.evasion_rate(detector) == 0.0
        assert len(store.evading(detector)) == 0
    assert len(store.by_sources({"S1", "S2"})) == 0
    first, second = store.split(0.8, np.random.default_rng(3))
    assert len(first) == len(second) == 0
    assert store.daily_series() == {}


def test_single_session_shard_store(columnar_corpus):
    columns = columnar_corpus.store.columns
    busiest = int(np.argmax(np.bincount(columns.session_codes)))
    rows = np.nonzero(columns.session_codes == busiest)[0]
    assert rows.size > 1  # the busiest session spans several requests
    single = LazyRequestStore(columns.take(rows).renumbered())
    reference = RequestStore(list(single))
    assert single.unique_ips() == 1
    assert single.unique_fingerprints() == 1
    assert len(single.sources()) == 1
    assert single.unique_cookies() == reference.unique_cookies()
    assert record_dicts(single) == record_dicts(reference)


def test_iteration_is_stable_after_partial_array_level_consumption(columnar_corpus):
    store = columnar_corpus.bot_store
    # Array-level consumption first: none of this may materialise records.
    ids = store.request_id_array()
    evaded = store.evaded_rows("BotD")
    sources = store.sources()
    first, _second = store.split(0.8, np.random.default_rng(7))
    assert not store.materialized and not first.materialized
    # Iterating afterwards materialises once; repeated iteration returns
    # the same objects and still agrees with every array-level answer.
    records_a = list(store)
    assert store.materialized
    records_b = list(store)
    assert all(a is b for a, b in zip(records_a, records_b))
    assert [record.request.request_id for record in records_a] == ids.tolist()
    assert [record.evaded("BotD") for record in records_a] == evaded.tolist()
    assert store.sources() == sources
    # A slice taken before materialisation materialises independently and
    # matches the parent's rows.
    split_ids = first.request_id_array()
    assert [record.request.request_id for record in first] == split_ids.tolist()


# -- object-free figure series ----------------------------------------------------


def test_figure9_columnar_matches_object_oracle(columnar_corpus):
    from repro.analysis.figures import _figure9_from_records, figure9_daily_series

    # Fresh lazy views over the shared columns: earlier tests may already
    # have materialised the corpus-wide store.
    whole = LazyRequestStore(columnar_corpus.store.columns)
    for store in (whole, columnar_corpus.bot_store):
        lazy_series = figure9_daily_series(store)
        assert not store.materialized
        assert lazy_series == _figure9_from_records(RequestStore(list(store)))


def test_new_fingerprints_columnar_matches_object_oracle(columnar_corpus):
    from repro.analysis.figures import (
        _new_fingerprints_from_records,
        new_fingerprints_over_time,
    )

    whole = LazyRequestStore(columnar_corpus.store.columns)
    for store in (whole, columnar_corpus.real_user_store):
        lazy_counts = new_fingerprints_over_time(store)
        assert not store.materialized
        assert lazy_counts == _new_fingerprints_from_records(RequestStore(list(store)))
        assert sum(lazy_counts) <= len(store)


def test_figure_series_on_empty_lazy_store():
    from repro.analysis.figures import figure9_daily_series, new_fingerprints_over_time

    store = empty_lazy_store()
    assert figure9_daily_series(store).days == ()
    assert new_fingerprints_over_time(store) == ()


# -- archive compatibility --------------------------------------------------------


def write_v2_archive(corpus, directory):
    """Persist *corpus* as a faithful format-version-2 archive.

    Forces the JSONL + sidecar layout by swapping in an object store, then
    rewrites the version fields to 2 — byte-wise what a PR-3 build wrote.
    """

    site = corpus.site
    original = site.store
    site.store = RequestStore(list(original))
    try:
        save_corpus(corpus, directory)
    finally:
        site.store = original
    meta_path = directory / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["format_version"] = 2
    meta_path.write_text(json.dumps(meta, indent=1, sort_keys=True))
    store_path = directory / "store.jsonl.gz"
    with gzip.open(store_path, "rt", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    header = json.loads(lines[0])
    header["version"] = 2
    lines[0] = json.dumps(header)
    with gzip.open(store_path, "wt", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def test_v2_archive_read_compat(tmp_path, columnar_corpus):
    archive = tmp_path / "v2"
    write_v2_archive(columnar_corpus, archive)
    assert (archive / "store.jsonl.gz").is_file()
    assert not (archive / "store_columnar.npz").exists()
    restored = load_corpus(archive)
    assert record_dicts(restored.store) == record_dicts(columnar_corpus.store)
    # version-2 archives carried sidecars for the bots/real_users subsets
    assert set(restored.columnar_tables) == {"bots", "real_users"}
    assert restored.service_volumes == columnar_corpus.service_volumes


def test_tampered_embedded_table_evicts_the_archive(tmp_path, columnar_corpus):
    archive = tmp_path / "v4"
    save_corpus(columnar_corpus, archive)
    path = archive / "store_columnar.npz"
    with np.load(path, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files}
    meta = json.loads(str(arrays["meta"][()]))
    prefix = meta["tables"][0]["prefix"]
    arrays[f"{prefix}request_ids"] = arrays[f"{prefix}request_ids"] + 1000
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    with pytest.raises(StoreFormatError):
        load_corpus(archive)


def test_tampered_v4_code_stream_evicts_the_archive(tmp_path, columnar_corpus):
    """Out-of-range fingerprint value codes must read as a miss, not decode
    into a silently wrong corpus."""

    archive = tmp_path / "v4"
    save_corpus(columnar_corpus, archive)
    path = archive / "store_columnar.npz"
    with np.load(path, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files}
    tampered = arrays["fp_value_codes"].astype(np.int32)
    tampered[0] = 10**6
    arrays["fp_value_codes"] = tampered
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    with pytest.raises(StoreFormatError):
        load_corpus(archive)


def test_truncated_v4_archive_evicts(tmp_path, columnar_corpus):
    archive = tmp_path / "v4"
    save_corpus(columnar_corpus, archive)
    path = archive / "store_columnar.npz"
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(StoreFormatError):
        load_corpus(archive)


def write_v3_archive(corpus, directory):
    """Persist *corpus* as a faithful format-version-3 archive.

    Version 3 kept the nine per-row/per-session arrays but serialised the
    session dictionaries as JSON objects (fingerprint dicts, header maps,
    decision records) in the archive meta, deflate-compressed — byte-wise
    what a PR-4/PR-5 build wrote.
    """

    save_corpus(corpus, directory)
    columns = corpus.store.columns
    path = directory / "store_columnar.npz"
    with np.load(path, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files}
    meta = json.loads(str(arrays["meta"][()]))
    for name in (
        "fp_attr_codes",
        "fp_value_codes",
        "fp_offsets",
        "header_key_codes",
        "header_value_codes",
        "header_offsets",
        "decision_detectors",
        "decision_is_bot",
        "decision_scores",
        "decision_signal_codes",
        "decision_signal_offsets",
    ):
        del arrays[name]
    arrays["session_headers"] = np.asarray(columns.session_headers, dtype=np.int32)
    arrays["session_datadome"] = np.asarray(columns.session_datadome, dtype=np.int32)
    arrays["session_botd"] = np.asarray(columns.session_botd, dtype=np.int32)
    meta["version"] = 3
    meta["store"] = {
        "cookie_values": list(columns.cookie_values),
        "sources": list(columns.sources),
        "url_paths": list(columns.url_paths),
        "session_fingerprints": [
            fingerprint.to_dict() for fingerprint in columns.session_fingerprints
        ],
        "session_ips": list(columns.session_ips),
        "headers": [dict(entry) for entry in columns.headers],
        "decisions": [
            {
                "detector": decision.detector,
                "is_bot": decision.is_bot,
                "score": decision.score,
                "signals": list(decision.signals),
            }
            for decision in columns.decisions
        ],
    }
    arrays["meta"] = np.array(json.dumps(meta))
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    meta_path = directory / "meta.json"
    document = json.loads(meta_path.read_text())
    document["format_version"] = 3
    meta_path.write_text(json.dumps(document, indent=1, sort_keys=True))


def test_v3_archive_read_compat(tmp_path, columnar_corpus):
    archive = tmp_path / "v3"
    write_v3_archive(columnar_corpus, archive)
    restored = load_corpus(archive)
    assert isinstance(restored.store, LazyRequestStore)
    assert record_dicts(restored.store) == record_dicts(columnar_corpus.store)
    assert set(restored.columnar_tables) == set(columnar_corpus.columnar_tables)
    assert restored.service_volumes == columnar_corpus.service_volumes


# -- fan-out clamp ----------------------------------------------------------------


def test_clamp_derives_from_transport_cost():
    vectorized = CorpusEngine(seed=7, scale=0.05)
    legacy = CorpusEngine(seed=7, scale=0.05, generation="legacy")
    assert vectorized.records_per_worker_floor() == MIN_RECORDS_PER_WORKER_COLUMNAR
    assert legacy.records_per_worker_floor() == MIN_RECORDS_PER_WORKER
    assert MIN_RECORDS_PER_WORKER_COLUMNAR < MIN_RECORDS_PER_WORKER

    specs = vectorized.plan()
    planned = sum(
        spec.request_budget
        if spec.request_budget is not None
        else spec.profile.scaled_requests(vectorized.scale)
        if spec.kind == "bots"
        else spec.num_requests
        for spec in specs
    )
    # The columnar transport makes scale-0.05 defaults choose fan-out...
    expected = min(8, planned // MIN_RECORDS_PER_WORKER_COLUMNAR, len(specs))
    assert expected > 1
    assert vectorized.effective_workers(8, specs) == expected
    # ...while the object transport still clamps the same plan to serial.
    assert planned < MIN_RECORDS_PER_WORKER
    assert legacy.effective_workers(8, legacy.plan()) == 1


def test_clamp_override_and_plan_reporting():
    engine = CorpusEngine(**TINY, min_records_per_worker=1)
    assert engine.records_per_worker_floor() == 1
    corpus = engine.build(workers=3, executor="thread")
    assert engine.last_plan["transport"] == "columnar"
    assert engine.last_plan["effective_workers"] == 3
    assert engine.last_plan["min_records_per_worker"] == 1
    # Transfer volume is measured for every columnar build — thread pools
    # ship nothing across a process boundary, but the plan still records
    # what a process build would pay.
    assert engine.last_plan["payload_bytes"] > 0
    assert len(corpus.store) == engine.last_plan["planned_records"] == sum(
        corpus.service_volumes.values()
    ) + corpus.real_user_requests + sum(corpus.privacy_requests.values())
    with pytest.raises(ValueError):
        CorpusEngine(**TINY, min_records_per_worker=0)


def test_payload_bytes_recorded_for_process_transfers():
    engine = CorpusEngine(**TINY, min_records_per_worker=1)
    engine.build(workers=2, executor="process")
    assert engine.last_plan["payload_bytes"] > 0


def test_payload_bytes_recorded_for_serial_builds():
    engine = CorpusEngine(**TINY)
    engine.build(workers=1)
    assert engine.last_plan["effective_workers"] == 1
    assert engine.last_plan["payload_bytes"] > 0


def test_shard_payload_contains_no_pickled_objects():
    """The v4 transport contract: pickling a shard result serialises numpy
    arrays and scalar decode lists — never a fingerprint, decision or
    request object (their defining modules must not appear in the blob)."""

    import pickle

    spec = CorpusEngine(**TINY).plan()[0]
    result = run_shard(spec)
    blob = pickle.dumps((result.columns, result.table), pickle.HIGHEST_PROTOCOL)
    for module in (b"fingerprint.fingerprint", b"antibot.base", b"network.request"):
        assert module not in blob, f"shard payload pickles objects from {module!r}"


def test_payload_bytes_per_record_below_committed_ceiling():
    """Regression gate backing the CI payload check: measured transfer cost
    must stay under the committed ceiling, itself below the ~353 B/record
    v3 baseline."""

    assert PAYLOAD_BYTES_PER_RECORD_CEILING < 353
    engine = CorpusEngine(**TINY)
    engine.build(workers=1)
    per_record = engine.last_plan["payload_bytes"] / engine.last_plan["planned_records"]
    assert per_record <= PAYLOAD_BYTES_PER_RECORD_CEILING, per_record


def test_first_occurrence_recode_matches_factorize():
    from repro.core.columnar import _factorize
    from repro.honeysite.storage import _first_occurrence_recode

    # values contain duplicates under distinct codes (sessions sharing an
    # address) and an unused entry; rows visit them out of dictionary order
    values = ["b", "a", "b", "c", "unused"]
    rows = np.array([3, 0, 2, 1, 0, 3, 2], dtype=np.int64)
    codes, recoded = _first_occurrence_recode(rows, values)
    expected_codes, expected_values, _ = _factorize([values[code] for code in rows])
    assert np.array_equal(codes, expected_codes)
    assert recoded == expected_values
    empty_codes, empty_values = _first_occurrence_recode(np.empty(0, np.int64), [])
    assert empty_codes.size == 0 and empty_values == []


# -- widened address space --------------------------------------------------------


def test_default_segments_preserve_primary_bases():
    # The primary segment of every kind keeps its historical base/span, so
    # previously generated corpora keep their exact addresses.
    assert DEFAULT_KIND_OCTET_RANGES[AsnKind.RESIDENTIAL_ISP][0] == (100, 10)
    assert DEFAULT_KIND_OCTET_RANGES[AsnKind.MOBILE_CARRIER][0] == (110, 10)
    assert DEFAULT_KIND_OCTET_RANGES[AsnKind.CLOUD_PROVIDER][0] == (34, 11)
    assert DEFAULT_KIND_OCTET_RANGES[AsnKind.HOSTING_PROVIDER][0] == (45, 10)
    space = IpAddressSpace()
    # capacity = sum of all configured segments
    assert space.kind_capacity(AsnKind.CLOUD_PROVIDER) == (11 + 20) * 256


def test_allocation_flows_into_extension_segment():
    space = IpAddressSpace()
    primary_base, primary_span = DEFAULT_KIND_OCTET_RANGES[AsnKind.CLOUD_PROVIDER][0]
    extension_base, _ = DEFAULT_KIND_OCTET_RANGES[AsnKind.CLOUD_PROVIDER][1]
    last_primary = primary_span * 256 - 1
    assert space._block_octets(AsnKind.CLOUD_PROVIDER, last_primary) == (
        primary_base + primary_span - 1,
        255,
    )
    assert space._block_octets(AsnKind.CLOUD_PROVIDER, last_primary + 1) == (
        extension_base,
        0,
    )


def test_exhaustion_raises_a_clear_error():
    space = IpAddressSpace(kind_ranges={AsnKind.CLOUD_PROVIDER: ((34, 1),)})
    cloud_asns = [asn for asn, record in ASN_REGISTRY.items() if record.kind is AsnKind.CLOUD_PROVIDER]
    with pytest.raises(AddressSpaceExhausted, match="cloud_provider.*256 /16 blocks"):
        for _round in range(2000):
            for asn in cloud_asns:
                for region in GEO_REGIONS:
                    space.assignment_for(asn, region)


def test_kind_ranges_must_be_disjoint_and_sane():
    with pytest.raises(ValueError, match="disjoint"):
        IpAddressSpace(kind_ranges={AsnKind.CLOUD_PROVIDER: ((100, 5),)})
    with pytest.raises(ValueError, match="base \\+ span"):
        IpAddressSpace(kind_ranges={AsnKind.CLOUD_PROVIDER: ((250, 20),)})
    with pytest.raises(ValueError, match="at least one"):
        IpAddressSpace(kind_ranges={AsnKind.CLOUD_PROVIDER: ()})
