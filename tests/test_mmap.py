"""Tests for memory-mapped corpus loading (format v4, ``REPRO_CORPUS_MMAP``).

The mmap contract has three legs, each pinned here: a warm cache hit maps
the archive's code columns read-only instead of reading them into RAM, the
mapped corpus is byte-identical to the in-RAM load through every consumer
(record materialisation, the batch detection pipeline, the streaming
replay, the parallel serve gateway), and the archive file itself is never
written to.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.analysis.cache import (
    COMPRESS_ENV_VAR,
    MMAP_ENV_VAR,
    CorpusCache,
    load_corpus,
    save_corpus,
)
from repro.analysis.engine import CorpusEngine, build_or_load_corpus
from repro.core.detector import FPInconsistent
from repro.honeysite.storage import LazyRequestStore
from repro.serve import DetectionGateway, GatewayReplayDriver
from repro.stream import ReplayDriver, verdicts_digest

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    include_privacy=True,
    real_user_requests=120,
    privacy_requests_each=12,
)


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    """(directory, built corpus, archive sha) — one v4 save shared below."""

    directory = tmp_path_factory.mktemp("mmap") / "entry"
    corpus = CorpusEngine(**TINY).build(workers=1)
    save_corpus(corpus, directory)
    digest = hashlib.sha256((directory / "store_columnar.npz").read_bytes()).hexdigest()
    return directory, corpus, digest


def _archive_sha(directory) -> str:
    return hashlib.sha256((directory / "store_columnar.npz").read_bytes()).hexdigest()


def record_dicts(store):
    return [record.to_dict() for record in store]


def batch_digest(corpus) -> str:
    """Digest of the batch pipeline's verdicts over the bot subset."""

    detector = FPInconsistent()
    table = detector.extract_table(corpus.bot_store)
    detector.fit_table(table)
    return verdicts_digest(detector.classify_table(table)), detector


def test_mapped_load_is_read_only_and_byte_identical(archive, monkeypatch):
    directory, corpus, saved_sha = archive
    monkeypatch.setenv(MMAP_ENV_VAR, "1")
    mapped = load_corpus(directory)
    assert isinstance(mapped.store, LazyRequestStore)
    columns = mapped.store.columns
    # the per-row and code columns are views over the on-disk archive
    assert not columns.timestamps.flags.writeable
    assert not columns.sessions.fp_value_codes.flags.writeable
    monkeypatch.setenv(MMAP_ENV_VAR, "0")
    in_ram = load_corpus(directory)
    assert in_ram.store.columns.timestamps.flags.writeable
    assert record_dicts(mapped.store) == record_dicts(in_ram.store)
    assert record_dicts(mapped.store) == record_dicts(corpus.store)
    assert _archive_sha(directory) == saved_sha, "archive file was written to"


def test_pipeline_on_mmap_cache_hit_matches_in_ram(archive, monkeypatch, tmp_path):
    """The full detection pipeline over an mmap warm hit is byte-identical
    to the in-RAM load (and the archive stays untouched)."""

    directory, corpus, saved_sha = archive
    monkeypatch.setenv(MMAP_ENV_VAR, "1")
    mapped = load_corpus(directory)
    mapped_digest, _ = batch_digest(mapped)
    monkeypatch.setenv(MMAP_ENV_VAR, "0")
    in_ram_digest, _ = batch_digest(load_corpus(directory))
    fresh_digest, _ = batch_digest(corpus)
    assert mapped_digest == in_ram_digest == fresh_digest
    assert _archive_sha(directory) == saved_sha


def test_stream_and_serve_replay_on_mmap_match_batch(archive, monkeypatch):
    """``repro stream --verify-batch`` semantics over a mapped corpus: the
    frozen-list replay and the 2-worker gateway replay both reproduce the
    batch verdicts bit for bit."""

    directory, _corpus, saved_sha = archive
    monkeypatch.setenv(MMAP_ENV_VAR, "1")
    mapped = load_corpus(directory)
    oracle, detector = batch_digest(mapped)
    store = mapped.bot_store
    replay = ReplayDriver(detector, batch_size=256).replay(store)
    assert verdicts_digest(replay.verdicts) == oracle
    with DetectionGateway(detector, workers=2) as gateway:
        served = GatewayReplayDriver(gateway, batch_size=256).replay(store)
    assert verdicts_digest(served.verdicts) == oracle
    assert not store.materialized, "mmap replay materialised record objects"
    assert _archive_sha(directory) == saved_sha


def test_cache_hit_serves_mapped_columns(tmp_path, monkeypatch):
    """`build_or_load_corpus` end-to-end: miss builds and stores, the warm
    hit comes back memory-mapped and decodes identically."""

    monkeypatch.setenv(MMAP_ENV_VAR, "1")
    cache = CorpusCache(tmp_path / "cache")
    built, status = build_or_load_corpus(**TINY, workers=1, cache=cache)
    assert status == "miss"
    hit, status = build_or_load_corpus(**TINY, workers=1, cache=cache)
    assert status == "hit"
    assert not hit.store.columns.timestamps.flags.writeable
    assert record_dicts(hit.store) == record_dicts(built.store)


def test_compressed_archive_falls_back_to_in_ram(tmp_path, monkeypatch):
    """``REPRO_CORPUS_COMPRESS=1`` trades mappability for disk space: the
    loader detects the deflated members and loads into RAM, with identical
    content."""

    corpus = CorpusEngine(**TINY).build(workers=1)
    monkeypatch.setenv(COMPRESS_ENV_VAR, "1")
    compressed_dir = tmp_path / "compressed"
    save_corpus(corpus, compressed_dir)
    monkeypatch.setenv(COMPRESS_ENV_VAR, "0")
    plain_dir = tmp_path / "plain"
    save_corpus(corpus, plain_dir)
    size_compressed = (compressed_dir / "store_columnar.npz").stat().st_size
    size_plain = (plain_dir / "store_columnar.npz").stat().st_size
    assert size_compressed < size_plain
    monkeypatch.setenv(MMAP_ENV_VAR, "1")
    fallback = load_corpus(compressed_dir)
    assert fallback.store.columns.timestamps.flags.writeable  # in-RAM copy
    assert record_dicts(fallback.store) == record_dicts(corpus.store)


def test_mapped_arrays_survive_process_pickling(archive, monkeypatch):
    """Sharded pipeline fan-out pickles mmap-backed columns to worker
    processes; the pickle must carry the data (as plain arrays), not a
    dangling map."""

    import pickle

    directory, corpus, _sha = archive
    monkeypatch.setenv(MMAP_ENV_VAR, "1")
    mapped = load_corpus(directory)
    columns = mapped.store.columns
    clone = pickle.loads(pickle.dumps(columns, pickle.HIGHEST_PROTOCOL))
    assert np.array_equal(clone.timestamps, columns.timestamps)
    assert record_dicts(LazyRequestStore(clone)) == record_dicts(corpus.store)
