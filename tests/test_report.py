"""Tests for the columnar reporting engine (``repro report``).

Pins the PR-9 contract: every ported analysis answers a columnar-backed
store bit-identically to the retained object-path oracle — on a regular
corpus, on edge-case stores (empty, no evading rows, missing probed
attributes, a single session) and on a memory-mapped archive — and the
columnar engine materialises zero record objects while doing so.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.attributes import (
    appendix_c_combination,
    table2,
    train_evasion_classifier,
)
from repro.analysis.cache import MMAP_ENV_VAR, load_corpus, save_corpus
from repro.analysis.engine import CorpusEngine
from repro.analysis.evasion import (
    cohort_comparison,
    dual_evader_summary,
    overall_detection_rates,
    table1_rows,
)
from repro.analysis.figures import (
    figure4_plugin_evasion,
    figure5_core_cdfs,
    figure6_device_evasion,
    figure7_iphone_resolutions,
    figure8_location_histograms,
    figure9_daily_series,
    figure10_platform_spread,
    new_fingerprints_over_time,
    section62_geo_match,
)
from repro.analysis.ip_analysis import analyze_asn_blocklist, analyze_ip_blocklist
from repro.analysis.report import Report, generate_report, report_section_keys
from repro.fingerprint.attributes import Attribute
from repro.honeysite.storage import (
    LazyRequestStore,
    RecordColumns,
    RecordColumnsBuilder,
    RequestStore,
    materialized_record_count,
)

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    include_privacy=True,
    real_user_requests=120,
    privacy_requests_each=12,
)


@pytest.fixture(scope="module")
def tiny_corpus():
    return CorpusEngine(**TINY).build(workers=1)


@pytest.fixture(scope="module")
def lazy_store(tiny_corpus):
    store = tiny_corpus.bot_store
    assert isinstance(store, LazyRequestStore)
    return store


@pytest.fixture(scope="module")
def object_store(lazy_store):
    return RequestStore(list(lazy_store))


@pytest.fixture(scope="module")
def regions(tiny_corpus):
    return {
        profile.name: profile.advertised_region
        for profile in tiny_corpus.bot_profiles
        if profile.advertised_region
    }


def empty_lazy_store() -> LazyRequestStore:
    return LazyRequestStore(RecordColumnsBuilder().columns().renumbered())


def rebuilt_store(columns: RecordColumns, *, strip=()) -> LazyRequestStore:
    """A lazy store over *columns* re-encoded through the object-dictionary
    constructor, optionally with *strip* attributes removed from every
    session fingerprint."""

    sessions = columns.sessions
    fingerprints = list(columns.session_fingerprints)
    if strip:
        fingerprints = [fingerprint.without(*strip) for fingerprint in fingerprints]
    return LazyRequestStore(
        RecordColumns(
            timestamps=columns.timestamps,
            session_codes=columns.session_codes,
            presented_codes=columns.presented_codes,
            served_codes=columns.served_codes,
            source_codes=columns.source_codes,
            cookie_values=list(columns.cookie_values),
            sources=list(columns.sources),
            url_paths=list(columns.url_paths),
            session_fingerprints=fingerprints,
            session_headers=sessions.session_headers,
            session_datadome=sessions.session_datadome,
            session_botd=sessions.session_botd,
            session_ips=list(sessions.session_ips),
            headers=list(columns.headers),
            decisions=list(columns.decisions),
            request_ids=columns.request_ids,
        )
    )


def edge_store(lazy_store: LazyRequestStore, case: str) -> LazyRequestStore:
    columns = lazy_store.columns
    if case == "empty":
        return empty_lazy_store()
    if case == "no_evaders":
        rows = np.nonzero(
            ~columns.evaded_rows("DataDome") & ~columns.evaded_rows("BotD")
        )[0]
        assert rows.size  # the tiny corpus detects some requests outright
        return LazyRequestStore(columns.take(rows).renumbered())
    if case == "missing_attributes":
        return rebuilt_store(
            columns,
            strip=(Attribute.PLUGINS, Attribute.SCREEN_RESOLUTION, Attribute.TIMEZONE),
        )
    if case == "single_session":
        busiest = int(np.argmax(np.bincount(columns.session_codes)))
        rows = np.nonzero(columns.session_codes == busiest)[0]
        assert rows.size > 1
        return LazyRequestStore(columns.take(rows).renumbered())
    raise AssertionError(case)


def analysis_battery(store: RequestStore, geo, regions) -> dict:
    """Every ported analysis, as one comparable result dictionary."""

    rows = table1_rows(store)
    return {
        "table1": rows,
        "overall": overall_detection_rates(store),
        "cohort_datadome": cohort_comparison(store, "DataDome"),
        "cohort_botd": cohort_comparison(store, "BotD"),
        "dual": dual_evader_summary(store),
        "appendix_c": appendix_c_combination(store),
        "figure4": figure4_plugin_evasion(store),
        "figure5": figure5_core_cdfs(
            store,
            [row.service for row in rows[:3]],
            [row.service for row in rows[-3:]],
        ),
        "figure6": figure6_device_evasion(store),
        "figure7": figure7_iphone_resolutions(store),
        "figure8": figure8_location_histograms(store),
        "figure9": figure9_daily_series(store),
        "new_fingerprints": new_fingerprints_over_time(store),
        "figure10": figure10_platform_spread(store),
        "section62": section62_geo_match(store, regions),
        "asn_blocklist": analyze_asn_blocklist(store, geo),
        "ip_blocklist": analyze_ip_blocklist(store),
    }


def test_battery_matches_object_oracle_with_zero_materialisation(
    tiny_corpus, lazy_store, object_store, regions
):
    geo = tiny_corpus.site.geo
    before = materialized_record_count()
    columnar = analysis_battery(lazy_store, geo, regions)
    assert materialized_record_count() == before
    reference = analysis_battery(object_store, geo, regions)
    for key, value in reference.items():
        assert columnar[key] == value, key


@pytest.mark.parametrize(
    "case", ("empty", "no_evaders", "missing_attributes", "single_session")
)
def test_edge_case_stores_match_object_oracle(tiny_corpus, lazy_store, regions, case):
    lazy = edge_store(lazy_store, case)
    reference = RequestStore(list(lazy))
    geo = tiny_corpus.site.geo
    before = materialized_record_count()
    columnar = analysis_battery(lazy, geo, regions)
    assert materialized_record_count() == before
    expected = analysis_battery(reference, geo, regions)
    for key, value in expected.items():
        assert columnar[key] == value, (case, key)


def test_missing_attribute_figures_degrade_not_crash(lazy_store):
    stripped = edge_store(lazy_store, "missing_attributes")
    points = figure4_plugin_evasion(stripped)
    assert points and all(
        point.requests == 0 and point.evasion_probability == 0.0 for point in points
    )
    assert figure7_iphone_resolutions(stripped).unique_resolutions == 0
    by_timezone, by_ip = figure8_location_histograms(stripped)
    assert by_timezone == {}
    assert by_ip  # IP country is probed from the address, not the fingerprint


def test_classifier_subsample_parity_both_rng_branches(lazy_store, object_store):
    # max_samples below the store size exercises the rng.choice draw;
    # above it, the no-subsample branch. Both must consume the generator
    # identically on the two engines.
    for max_samples in (300, 10 ** 6):
        columnar = train_evasion_classifier(
            lazy_store, "DataDome", max_samples=max_samples, seed=3
        )
        reference = train_evasion_classifier(
            object_store, "DataDome", max_samples=max_samples, seed=3
        )
        assert columnar.train_accuracy == reference.train_accuracy
        assert columnar.test_accuracy == reference.test_accuracy
        assert columnar.importances == reference.importances
        assert columnar.permutation == reference.permutation


def test_classifier_rejects_tiny_stores_on_both_engines(lazy_store):
    single = edge_store(lazy_store, "single_session")
    if len(single) >= 20:
        single = LazyRequestStore(single.columns.take(np.arange(5)).renumbered())
    with pytest.raises(ValueError):
        train_evasion_classifier(single, "DataDome")
    with pytest.raises(ValueError):
        train_evasion_classifier(RequestStore(list(single)), "DataDome")


def test_report_engines_are_value_identical(tiny_corpus):
    before = materialized_record_count()
    columnar = generate_report(tiny_corpus, engine="columnar", ml_samples=300)
    assert materialized_record_count() == before
    assert columnar.materialized_records == 0
    reference = generate_report(tiny_corpus, engine="object", ml_samples=300)
    assert reference.materialized_records > 0
    assert columnar.digests() == reference.digests()
    assert [section.key for section in columnar.sections] == list(report_section_keys())
    for col_section, ref_section in zip(columnar.sections, reference.sections):
        assert col_section.data == ref_section.data, col_section.key


def test_report_section_subset_and_unknown_key(tiny_corpus):
    report = generate_report(tiny_corpus, sections=["table1", "figure4"])
    assert [section.key for section in report.sections] == ["table1", "figure4"]
    with pytest.raises(ValueError, match="unknown report section"):
        generate_report(tiny_corpus, sections=["table1", "figure99"])
    with pytest.raises(ValueError, match="engine must be one of"):
        generate_report(tiny_corpus, engine="quantum")


def test_report_render_and_json_document(tiny_corpus):
    report = generate_report(tiny_corpus, sections=["table1", "blocklists"], cache_key="abc123")
    assert isinstance(report, Report)
    text = report.render()
    assert "Table 1 · Per-service evasion" in text
    assert "ASN / IP blocklist coverage" in text
    document = report.to_document()
    encoded = json.dumps(document, sort_keys=True, default=str)
    decoded = json.loads(encoded)
    assert decoded["engine"] == "columnar"
    assert decoded["cache_key"] == "abc123"
    assert decoded["materialized_records"] == 0
    keys = [section["key"] for section in decoded["sections"]]
    assert keys == ["table1", "blocklists"]
    for section in decoded["sections"]:
        assert section["seconds"] >= 0
        assert len(section["digest"]) == 16


def test_report_digests_stable_on_memory_mapped_archive(tiny_corpus, tmp_path, monkeypatch):
    baseline = generate_report(
        tiny_corpus, sections=["table1", "figure4", "figure9", "blocklists"]
    )
    save_corpus(tiny_corpus, tmp_path)
    monkeypatch.setenv(MMAP_ENV_VAR, "1")
    reloaded = load_corpus(tmp_path)
    assert isinstance(reloaded.store, LazyRequestStore)
    before = materialized_record_count()
    mapped = generate_report(
        reloaded, sections=["table1", "figure4", "figure9", "blocklists"]
    )
    assert materialized_record_count() == before
    assert mapped.digests() == baseline.digests()


def test_table2_identical_across_engines(lazy_store, object_store):
    assert table2(lazy_store, max_samples=300) == table2(object_store, max_samples=300)
