"""Integration tests: full corpus → analyses → FP-Inconsistent evaluation.

These tests exercise the same code paths as the benchmarks, on the shared
small-scale corpus, and assert the *shape* of the paper's results (who
wins, direction of effects), not exact percentages.
"""

import pytest

from repro.analysis.attributes import appendix_c_combination, train_evasion_classifier
from repro.analysis.evasion import (
    cohort_comparison,
    dual_evader_summary,
    overall_detection_rates,
    table1_rows,
    top_and_bottom_services,
)
from repro.analysis.figures import (
    figure4_plugin_evasion,
    figure5_core_cdfs,
    figure6_device_evasion,
    figure7_iphone_resolutions,
    figure8_location_histograms,
    figure9_daily_series,
    figure10_platform_spread,
    section62_geo_match,
)
from repro.analysis.ip_analysis import analyze_asn_blocklist, analyze_ip_blocklist
from repro.analysis.privacy_eval import evaluate_privacy_technologies
from repro.core.detector import FPInconsistent
from repro.core.evaluation import evaluate_generalization
from repro.reporting.figures import ascii_bar_chart, series_to_csv
from repro.reporting.tables import format_percent, format_table
from repro.users.privacy import PrivacyTechnology


# -- corpus shape -----------------------------------------------------------------


def test_corpus_has_all_sources(small_corpus):
    sources = set(small_corpus.store.sources())
    assert {f"S{i}" for i in range(1, 21)} <= sources
    assert "real_users" in sources
    assert any(source.startswith("privacy:") for source in sources)


def test_corpus_volumes_scale_with_table1(small_corpus):
    rows = {row.service: row for row in table1_rows(small_corpus.bot_store)}
    assert rows["S1"].num_requests > rows["S20"].num_requests
    assert rows["S1"].num_requests == pytest.approx(121_500 * small_corpus.scale, rel=0.05)


def test_overall_detection_rates_match_paper_shape(small_corpus):
    rates = overall_detection_rates(small_corpus.bot_store)
    # Paper: DataDome detects 55.44%, BotD 47.07% — DataDome detects more,
    # and both sit in the 35–70% band.
    assert rates["DataDome"] > rates["BotD"]
    assert 0.35 < rates["BotD"] < 0.7
    assert 0.4 < rates["DataDome"] < 0.7


def test_per_service_evasion_targets_are_tracked(small_corpus):
    rows = {row.service: row for row in table1_rows(small_corpus.bot_store)}
    profiles = {profile.name: profile for profile in small_corpus.bot_profiles}
    for name in ("S1", "S3", "S8", "S15"):
        observed = rows[name]
        target = profiles[name]
        # Session-based generation clusters draws, so the tolerance is
        # generous at the small test scale; the benchmarks use larger
        # corpora where the rates converge to the Table 1 targets.
        assert observed.datadome_evasion_rate == pytest.approx(
            target.datadome_evasion_target, abs=0.12
        )
        assert observed.botd_evasion_rate == pytest.approx(target.botd_evasion_target, abs=0.12)


def test_top_bottom_cohorts_match_paper(small_corpus):
    rows = table1_rows(small_corpus.bot_store)
    top, bottom = top_and_bottom_services(rows, "BotD")
    assert set(top) <= {"S15", "S18", "S19", "S20", "S14"}
    top_dd, _ = top_and_bottom_services(rows, "DataDome")
    assert set(top_dd) <= {"S8", "S9", "S17", "S14", "S20", "S3"}


# -- section 5.1 ------------------------------------------------------------------------


def test_asn_blocklist_analysis(small_corpus):
    result = analyze_asn_blocklist(small_corpus.bot_store, small_corpus.site.geo)
    # Most bot traffic comes from flagged address space, yet a large share
    # of it still evades (Takeaway 2).
    assert result.flagged_fraction > 0.6
    assert result.flagged_datadome_evasion > 0.25
    assert result.flagged_botd_evasion > 0.25


def test_ip_blocklist_analysis(small_corpus):
    result = analyze_ip_blocklist(small_corpus.bot_store, coverage=0.16, seed=1)
    assert result.coverage < 0.5  # partial coverage by construction
    assert result.covered_requests <= result.total_requests


# -- section 5.2 / 5.3 ----------------------------------------------------------------------


def test_evasion_classifier_accuracy_and_importance(small_corpus):
    result = train_evasion_classifier(
        small_corpus.bot_store, "BotD", max_samples=4000, seed=0
    )
    # Paper: BotD classifier reaches ~97% accuracy; the blind-spot
    # attributes dominate the importance ranking.
    assert result.test_accuracy > 0.9
    top = result.top_attributes(5)
    assert "Plugins" in top or "Touch Support" in top


def test_datadome_classifier_finds_hardware_concurrency(small_corpus):
    result = train_evasion_classifier(
        small_corpus.bot_store, "DataDome", max_samples=4000, seed=0
    )
    assert result.test_accuracy > 0.7
    assert "Hardware Concurrency" in result.top_attributes(5)


def test_cohort_comparison_botd_plugins(small_corpus):
    comparison = cohort_comparison(small_corpus.bot_store, "BotD")
    assert comparison.top_evasion_rate > comparison.bottom_evasion_rate
    assert comparison.top_with_plugins + comparison.top_with_touch > comparison.bottom_with_plugins


def test_cohort_comparison_datadome_cores(small_corpus):
    comparison = cohort_comparison(small_corpus.bot_store, "DataDome")
    # Section 5.3.2: the high-evasion cohort reports fewer cores.
    assert comparison.top_low_cores > comparison.bottom_low_cores


def test_dual_evaders_exploit_touch(small_corpus):
    summary = dual_evader_summary(small_corpus.bot_store)
    assert set(summary.services) <= {"S14", "S20"}
    assert summary.touch_support_fraction > 0.5
    assert summary.no_plugins_fraction > 0.5
    assert summary.low_cores_fraction > 0.5


def test_appendix_c_combination_rule(small_corpus):
    result = appendix_c_combination(small_corpus.bot_store)
    assert result.matching_requests > 0
    assert result.matching_datadome_evasion > result.overall_datadome_evasion


# -- figures ------------------------------------------------------------------------------------


def test_figure4_any_plugin_nearly_guarantees_botd_evasion(small_corpus):
    points = figure4_plugin_evasion(small_corpus.bot_store)
    assert points
    for point in points:
        if point.requests >= 20:
            assert point.evasion_probability > 0.95


def test_figure5_low_cores_dominate_high_evasion_cohort(small_corpus):
    rows = table1_rows(small_corpus.bot_store)
    top, bottom = top_and_bottom_services(rows, "DataDome")
    high, low = figure5_core_cdfs(small_corpus.bot_store, top, bottom)
    assert high.fraction_below(8) > low.fraction_below(8)
    assert high.fraction_below(8) > 0.6


def test_figure6_popular_devices_have_high_evasion(small_corpus):
    points = figure6_device_evasion(small_corpus.bot_store, min_requests=30)
    assert points
    devices = {point.device for point in points}
    assert devices & {"iPhone", "iPad", "Mac", "Windows PC"}
    assert all(0.0 <= point.evasion_probability <= 1.0 for point in points)


def test_figure7_most_top_iphone_resolutions_do_not_exist(small_corpus):
    analysis = figure7_iphone_resolutions(small_corpus.bot_store, min_requests=5)
    assert analysis.unique_resolutions > 12  # far more than real iPhones have
    assert len(analysis.top_points) > 0
    assert analysis.nonexistent_in_top >= len(analysis.top_points) * 0.6


def test_section62_ip_matches_better_than_timezone(small_corpus):
    services_with_regions = {
        profile.name: profile.advertised_region
        for profile in small_corpus.bot_profiles
        if profile.advertised_region
    }
    summaries = section62_geo_match(small_corpus.bot_store, services_with_regions)
    assert summaries
    for summary in summaries:
        assert summary.ip_match_rate > 0.8
        assert summary.timezone_match_rate <= summary.ip_match_rate + 0.05


def test_figure8_histograms_cover_both_views(small_corpus):
    by_timezone, by_ip = figure8_location_histograms(small_corpus.bot_store)
    assert sum(by_ip.values()) == len(small_corpus.bot_store)
    assert set(by_timezone) != set()
    # The two inference methods disagree on the geographic spread.
    assert by_timezone != by_ip


def test_figure9_series_consistency(small_corpus):
    series = figure9_daily_series(small_corpus.bot_store)
    assert sum(series.requests) == len(small_corpus.bot_store)
    assert len(series.days) == len(series.unique_ips) == len(series.unique_cookies)
    for day_requests, day_fps in zip(series.requests, series.unique_fingerprints):
        assert day_fps <= day_requests


def test_figure10_platform_spread_shows_rotation(small_corpus):
    spread = figure10_platform_spread(small_corpus.bot_store)
    assert spread is not None
    assert spread.requests >= 2
    assert abs(sum(spread.platform_percentages.values()) - 100.0) < 1e-6


# -- FP-Inconsistent evaluation --------------------------------------------------------------------


def test_pipeline_rules_are_nonempty_and_serializable(pipeline_result, tmp_path):
    assert len(pipeline_result.filter_list) > 20
    path = tmp_path / "rules.json"
    pipeline_result.filter_list.save(path)
    assert path.exists()


def test_table4_shape(pipeline_result):
    for rates in pipeline_result.table4.values():
        assert rates.with_spatial >= rates.baseline
        assert rates.with_temporal >= rates.baseline
        assert rates.with_combined >= rates.with_spatial
        assert rates.with_combined >= rates.with_temporal
        # Spatial rules contribute far more than temporal ones (Table 4).
        assert rates.with_spatial - rates.baseline > rates.with_temporal - rates.baseline
        # Headline: combined rules remove a large share of evading traffic.
        assert 0.25 < rates.evasion_reduction < 0.85


def test_table3_every_service_improves(pipeline_result):
    assert len(pipeline_result.table3) == 20
    for row in pipeline_result.table3:
        assert row.datadome_improved >= row.datadome_baseline
        assert row.botd_improved >= row.botd_baseline


def test_real_user_true_negative_rate(pipeline_result):
    # Paper reports 96.84%; the reproduction stays in the same band.
    assert pipeline_result.real_user_tnr is not None
    assert pipeline_result.real_user_tnr > 0.93


def test_generalization_drop_is_small(small_corpus):
    results = evaluate_generalization(small_corpus.bot_store, seed=0)
    for result in results.values():
        assert abs(result.accuracy_drop) < 0.05


def test_privacy_technologies_match_section75(small_corpus, pipeline_result):
    detector = FPInconsistent(filter_list=pipeline_result.filter_list)
    stores = {
        technology: small_corpus.privacy_store(technology)
        for technology in PrivacyTechnology
        if len(small_corpus.privacy_store(technology)) > 0
    }
    results = {result.technology: result for result in evaluate_privacy_technologies(stores, detector)}
    # Tor: spatial location inconsistencies on every request.
    assert results[PrivacyTechnology.TOR].fp_spatial_rate > 0.9
    # Brave: no spatial inconsistencies, only temporal ones.
    assert results[PrivacyTechnology.BRAVE].fp_spatial_rate < 0.1
    assert results[PrivacyTechnology.BRAVE].fp_temporal_rate > 0.15
    # Safari and the blockers trigger nothing.
    for technology in (PrivacyTechnology.SAFARI, PrivacyTechnology.UBLOCK_ORIGIN, PrivacyTechnology.ADBLOCK_PLUS):
        assert results[technology].fp_inconsistent_rate == 0.0


# -- reporting helpers --------------------------------------------------------------------------------


def test_reporting_renders_table1(small_corpus):
    rows = table1_rows(small_corpus.bot_store)
    table = format_table(
        ["Service", "Requests", "DataDome evasion", "BotD evasion"],
        [
            (row.service, row.num_requests, format_percent(row.datadome_evasion_rate), format_percent(row.botd_evasion_rate))
            for row in rows
        ],
        title="Table 1",
    )
    assert "S1" in table and "%" in table


def test_reporting_chart_and_csv(small_corpus, tmp_path):
    points = figure4_plugin_evasion(small_corpus.bot_store)
    chart = ascii_bar_chart({point.plugin: point.evasion_probability for point in points})
    assert "#" in chart
    series = figure9_daily_series(small_corpus.bot_store)
    csv_text = series_to_csv(
        {"day": series.days, "requests": series.requests}, tmp_path / "fig9.csv"
    )
    assert (tmp_path / "fig9.csv").exists()
    assert csv_text.splitlines()[0] == "day,requests"
