"""Tests for the sharded corpus engine, persistence layer and cache."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.analysis.cache import (
    CorpusCache,
    corpus_cache_key,
    load_corpus,
    save_corpus,
)
from repro.analysis.corpus import build_corpus, build_corpus_serial
from repro.analysis.engine import (
    CorpusEngine,
    build_corpus_sharded,
    build_or_load_corpus,
    run_shard,
)
from repro.fingerprint.attributes import Attribute
from repro.geo.ipaddr import GeoRegion, IpAddressSpace, PrefixAssignment
from repro.honeysite.storage import CORPUS_FORMAT_VERSION, RequestStore, StoreFormatError
from repro.users.privacy import PrivacyTechnology

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    include_privacy=True,
    real_user_requests=120,
    privacy_requests_each=12,
)


def store_bytes(corpus) -> bytes:
    """Canonical serialisation of a corpus store, for equality checks."""

    return "\n".join(
        json.dumps(record.to_dict(), sort_keys=True) for record in corpus.store
    ).encode()


@pytest.fixture(scope="module")
def tiny_engine_corpus():
    return build_corpus_sharded(**TINY, workers=1)


# -- determinism ----------------------------------------------------------------


def test_same_seed_identical_for_one_and_four_workers(tiny_engine_corpus):
    parallel = build_corpus_sharded(**TINY, workers=4, executor="process")
    assert store_bytes(tiny_engine_corpus) == store_bytes(parallel)


def test_thread_executor_matches_process_and_serial(tiny_engine_corpus):
    threaded = build_corpus_sharded(**TINY, workers=3, executor="thread")
    assert store_bytes(tiny_engine_corpus) == store_bytes(threaded)


def test_different_seed_differs(tiny_engine_corpus):
    other = build_corpus_sharded(**{**TINY, "seed": 30}, workers=1)
    assert store_bytes(tiny_engine_corpus) != store_bytes(other)


def test_request_ids_are_sequential(tiny_engine_corpus):
    ids = [record.request.request_id for record in tiny_engine_corpus.store]
    assert ids == list(range(1, len(ids) + 1))


def test_engine_corpus_supports_analyses(tiny_engine_corpus):
    corpus = tiny_engine_corpus
    assert len(corpus.bot_store) == sum(corpus.service_volumes.values())
    assert len(corpus.real_user_store) == corpus.real_user_requests
    assert set(corpus.privacy_requests) == {
        PrivacyTechnology.SAFARI,
        PrivacyTechnology.BRAVE,
        PrivacyTechnology.TOR,
        PrivacyTechnology.UBLOCK_ORIGIN,
        PrivacyTechnology.ADBLOCK_PLUS,
    }
    # The merged geo database must resolve every shard-allocated address and
    # agree with the IP enrichment stamped at collection time.
    for record in corpus.store:
        geo = corpus.site.geo.lookup(record.request.ip_address)
        assert geo is not None
        assert geo.country == record.attribute(Attribute.IP_COUNTRY)


def test_shards_cover_all_sources():
    specs = CorpusEngine(**TINY).plan()
    kinds = [spec.kind for spec in specs]
    assert kinds.count("bots") == 20
    assert kinds.count("real_users") == 1
    assert kinds.count("privacy") == 5
    assert len({spec.url_path for spec in specs}) == len(specs)
    assert len({spec.seed.spawn_key for spec in specs}) == len(specs)


def test_run_shard_is_self_contained():
    spec = CorpusEngine(**TINY).plan()[3]
    first = run_shard(spec)
    second = run_shard(spec)
    assert first.recorded == second.recorded
    # Columnar transport: the shard ships a payload, not record objects.
    assert not first.records and first.columns is not None
    first_store, second_store = first.store(), second.store()
    assert len(first_store) == first.recorded
    assert [r.request.ip_address for r in first_store] == [
        r.request.ip_address for r in second_store
    ]


def test_cache_false_does_not_engage_engine(monkeypatch):
    # cache=False means "no caching", not "switch generation paths": with
    # no engine knob set it must return the same stream as the default.
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_CORPUS_CACHE", raising=False)
    default = build_corpus(seed=37, scale=0.002, include_real_users=False)
    no_cache = build_corpus(seed=37, scale=0.002, include_real_users=False, cache=False)
    assert [r.request.ip_address for r in default.store] == [
        r.request.ip_address for r in no_cache.store
    ]


def test_legacy_serial_path_unchanged_by_facade(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_CORPUS_CACHE", raising=False)
    legacy = build_corpus_serial(seed=31, scale=0.003, include_real_users=False)
    facade = build_corpus(seed=31, scale=0.003, include_real_users=False)

    def without_ids(corpus):
        # The legacy path numbers requests from a process-global counter, so
        # absolute ids depend on what ran earlier in the process; compare
        # everything else.
        records = []
        for record in corpus.store:
            data = record.to_dict()
            data["request"].pop("request_id")
            records.append(data)
        return records

    assert without_ids(legacy) == without_ids(facade)


# -- partitioned address space -------------------------------------------------


def test_partitioned_spaces_are_disjoint():
    region = GeoRegion("United States of America", "California", "America/Los_Angeles")
    spaces = [IpAddressSpace(partition=(index, 3)) for index in range(3)]
    prefixes = set()
    for space in spaces:
        for asn in (7922, 701, 16509):
            assignment = space.assignment_for(asn, region)
            assert (assignment.first_octet, assignment.second_octet) not in prefixes
            prefixes.add((assignment.first_octet, assignment.second_octet))


def test_partition_validation():
    with pytest.raises(ValueError):
        IpAddressSpace(partition=(3, 3))
    with pytest.raises(ValueError):
        IpAddressSpace(partition=(0, 0))


def test_adopt_rejects_conflicting_prefix():
    region_a = GeoRegion("United States of America", "California", "America/Los_Angeles")
    region_b = GeoRegion("United States of America", "Texas", "America/Chicago")
    space = IpAddressSpace()
    taken = space.assignment_for(7922, region_a)
    conflicting = PrefixAssignment(
        first_octet=taken.first_octet,
        second_octet=taken.second_octet,
        asn=701,
        region=region_b,
    )
    with pytest.raises(ValueError):
        space.adopt(conflicting)
    space.adopt(taken)  # re-adopting the identical assignment is a no-op


# -- persistence ---------------------------------------------------------------


def test_store_roundtrip_gzip_with_decision_fidelity(tiny_engine_corpus, tmp_path):
    path = tmp_path / "store.jsonl.gz"
    tiny_engine_corpus.store.save_jsonl(path)
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
    assert header["version"] == CORPUS_FORMAT_VERSION
    assert header["count"] == len(tiny_engine_corpus.store)

    loaded = RequestStore.load_jsonl(path)
    assert len(loaded) == len(tiny_engine_corpus.store)
    for original, restored in zip(tiny_engine_corpus.store, loaded):
        assert original.to_dict() == restored.to_dict()
        assert restored.datadome.detector == "DataDome"
        assert restored.botd.detector == "BotD"
        assert restored.datadome.is_bot == original.datadome.is_bot
        assert restored.datadome.signals == original.datadome.signals
        assert restored.request.fingerprint == original.request.fingerprint


def test_load_rejects_newer_format(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(
        json.dumps({"format": "repro-request-store", "version": CORPUS_FORMAT_VERSION + 1})
        + "\n"
    )
    with pytest.raises(StoreFormatError):
        RequestStore.load_jsonl(path)


def test_load_rejects_truncated_store(tiny_engine_corpus, tmp_path):
    path = tmp_path / "store.jsonl"
    tiny_engine_corpus.store.save_jsonl(path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(StoreFormatError):
        RequestStore.load_jsonl(path)


def test_corpus_archive_roundtrip(tiny_engine_corpus, tmp_path):
    save_corpus(tiny_engine_corpus, tmp_path / "archive")
    restored = load_corpus(tmp_path / "archive")
    assert store_bytes(restored) == store_bytes(tiny_engine_corpus)
    assert restored.seed == tiny_engine_corpus.seed
    assert restored.scale == tiny_engine_corpus.scale
    assert restored.service_volumes == tiny_engine_corpus.service_volumes
    assert restored.privacy_requests == tiny_engine_corpus.privacy_requests
    # restored geo + URL registry keep working
    assert len(restored.bot_store) == len(tiny_engine_corpus.bot_store)
    record = restored.store[0]
    assert restored.site.geo.lookup(record.request.ip_address) is not None
    assert restored.site.urls.source_of(record.request.url_path) == record.source


# -- cache ---------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cold, cold_status = build_or_load_corpus(**TINY, workers=2, executor="thread", cache=tmp_path)
    warm, warm_status = build_or_load_corpus(**TINY, workers=1, cache=tmp_path)
    assert (cold_status, warm_status) == ("miss", "hit")
    assert store_bytes(cold) == store_bytes(warm)


def test_cache_invalidation_on_key_inputs(tmp_path):
    cache = CorpusCache(tmp_path)
    _, first = build_or_load_corpus(**TINY, workers=1, cache=cache)
    assert first == "miss"
    _, seed_changed = build_or_load_corpus(**{**TINY, "seed": 99}, workers=1, cache=cache)
    assert seed_changed == "miss"
    _, scale_changed = build_or_load_corpus(**{**TINY, "scale": 0.005}, workers=1, cache=cache)
    assert scale_changed == "miss"
    assert len(cache.keys()) == 3


def test_cache_key_ignores_parallelism_but_not_format_version():
    base = dict(
        seed=1,
        scale=0.01,
        include_real_users=True,
        include_privacy=False,
        real_user_requests=10,
        privacy_requests_each=5,
        campaign_days=90,
    )
    assert corpus_cache_key(**base) == corpus_cache_key(**base)
    assert corpus_cache_key(**base) != corpus_cache_key(
        **base, format_version=CORPUS_FORMAT_VERSION + 1
    )
    assert corpus_cache_key(**base) != corpus_cache_key(**{**base, "include_privacy": True})


def test_corrupt_cache_entry_is_rebuilt(tmp_path):
    cache = CorpusCache(tmp_path)
    _, first = build_or_load_corpus(**TINY, workers=1, cache=cache)
    key = next(iter(cache.keys()))
    (cache.path_for(key) / "store_columnar.npz").write_bytes(b"not an archive at all")
    _, second = build_or_load_corpus(**TINY, workers=1, cache=cache)
    assert (first, second) == ("miss", "miss")
