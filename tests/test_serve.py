"""Tests for the parallel detection gateway (``repro.serve``).

The serving subsystem's contract has one headline clause: scoring an
arrival stream through N device-closed workers must be **byte-identical**
to the single-worker stream and to the batch pipeline.  These tests pin
that oracle for worker counts {1, 2, 4}, the device-closed routing
invariant behind it (a device key's rows never split across workers), the
state-migration path that preserves it under live-traffic key merges, and
the day-driven background filter-list refresh.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.engine import CorpusEngine
from repro.core.detector import FPInconsistent
from repro.fingerprint.attributes import Attribute
from repro.serve import (
    DetectionGateway,
    DeviceRouter,
    GatewayReplayDriver,
    KeyMigration,
)
from repro.stream import (
    ArrivalStream,
    FilterListRefresher,
    ReplayDriver,
    StreamIngestor,
    verdicts_digest,
)

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    include_privacy=True,
    real_user_requests=120,
    privacy_requests_each=12,
)


@pytest.fixture(scope="module")
def corpus():
    return CorpusEngine(**TINY).build(workers=1)


@pytest.fixture(scope="module")
def fitted(corpus):
    """(detector, bot table, batch verdicts): the serving oracle."""

    detector = FPInconsistent()
    table = detector.extract_table(corpus.bot_store)
    detector.fit_table(table)
    verdicts = detector.classify_table(table)
    return detector, table, verdicts


# -- the byte-identity oracle ----------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_gateway_matches_batch_and_stream_for_any_worker_count(corpus, fitted, workers):
    detector, table, batch_verdicts = fitted
    store = corpus.bot_store

    router = DeviceRouter.from_table(table, workers)
    with DetectionGateway(detector, router=router) as gateway:
        result = GatewayReplayDriver(gateway, batch_size=256).replay(store)

    assert result.workers == workers
    assert result.rows == len(store)
    assert sum(result.worker_rows) == result.rows
    # The pre-pinned router reproduces the batch partition: no migrations.
    assert result.migrations == 0
    # Byte-identical to the batch pipeline and (hence) the single stream.
    assert result.verdicts == batch_verdicts
    assert verdicts_digest(result.verdicts) == verdicts_digest(batch_verdicts)
    stream = ReplayDriver(detector, batch_size=256).replay(store)
    assert verdicts_digest(result.verdicts) == verdicts_digest(stream.verdicts)


def test_dynamic_router_also_matches_batch(corpus, fitted):
    detector, _table, batch_verdicts = fitted

    # No pre-pinned partition: keys are pinned on first sight and merged
    # (with state migration) as links surface.  Identity must still hold.
    with DetectionGateway(detector, workers=2) as gateway:
        result = GatewayReplayDriver(gateway, batch_size=128).replay(corpus.bot_store)
    assert result.verdicts == batch_verdicts


def test_gateway_balances_load_across_workers(corpus, fitted):
    detector, table, _batch_verdicts = fitted
    router = DeviceRouter.from_table(table, 4)
    with DetectionGateway(detector, router=router) as gateway:
        result = GatewayReplayDriver(gateway, batch_size=256).replay(corpus.bot_store)
    # The union-find partitioner packs components balanced; each worker
    # should score a meaningful share of the stream, not a remainder.
    assert min(result.worker_rows) > result.rows // 8


# -- device-closed routing -------------------------------------------------------


def test_routing_never_splits_a_device_key_across_workers(corpus, fitted):
    detector, table, _batch_verdicts = fitted
    router = DeviceRouter.from_table(table, 4)
    ingestor = StreamIngestor(attributes=detector.table_attributes())
    arrivals = ArrivalStream(corpus.bot_store)

    key_homes = {}
    for start in range(0, arrivals.total, 256):
        batch = arrivals.ingest(ingestor, start, 256)
        assignments, migrations = router.route(batch)
        assert not migrations
        covered = np.sort(np.concatenate(assignments))
        assert np.array_equal(covered, np.arange(batch.n_rows))
        for worker, rows in enumerate(assignments):
            for row in rows.tolist():
                for kind, codes, values in (
                    ("cookie", batch.cookie_codes, batch.cookie_values),
                    ("ip", batch.ip_codes, batch.ip_values),
                ):
                    code = int(codes[row])
                    if code < 0 or not values[code]:
                        continue
                    key = (kind, values[code])
                    assert key_homes.setdefault(key, worker) == worker, (
                        f"{key} split across workers {key_homes[key]} and {worker}"
                    )
    assert len(key_homes) > 4  # the invariant was actually exercised


def test_router_links_keys_first_revealed_inside_a_batch(corpus, fitted):
    detector, _table, _verdicts = fitted
    # Three fresh keys, linked only through the middle row: the whole
    # component must land on one worker even though no key was pinned.
    router = DeviceRouter(2)
    ingestor = StreamIngestor(attributes=detector.table_attributes())
    fingerprint = _some_fingerprints(corpus.bot_store.records, 1)[0]
    records = [
        _record(fingerprint, cookie="k-a", ip="198.51.100.1", timestamp=1.0, request_id=1),
        _record(fingerprint, cookie="k-a", ip="198.51.100.2", timestamp=2.0, request_id=2),
        _record(fingerprint, cookie="k-b", ip="198.51.100.2", timestamp=3.0, request_id=3),
    ]
    assignments, migrations = router.route(ingestor.ingest_records(records))
    assert not migrations
    homes = {worker for worker, rows in enumerate(assignments) if rows.size}
    assert len(homes) == 1


def test_router_validates_inputs(fitted):
    detector, table, _verdicts = fitted
    with pytest.raises(ValueError, match="workers"):
        DeviceRouter(0)
    with pytest.raises(ValueError, match="request metadata"):
        DeviceRouter(2).route(table.with_columns({
            attribute: table.codes_of(attribute) for attribute in table.attributes
        }))


# -- state migration -------------------------------------------------------------


def _record(fingerprint, *, cookie, ip, timestamp, request_id):
    from repro.antibot.base import Decision
    from repro.honeysite.storage import RecordedRequest
    from repro.network.request import WebRequest

    request = WebRequest(
        url_path="/serve-test",
        timestamp=timestamp,
        ip_address=ip,
        fingerprint=fingerprint,
        cookie=cookie,
        request_id=request_id,
    )
    decision = Decision(detector="test", is_bot=False, score=0.0)
    return RecordedRequest(
        request=request, source="serve-test", cookie=cookie,
        datadome=decision, botd=decision,
    )


def _some_fingerprints(corpus_records, count, distinct_timezones=False):
    """Fingerprints from the corpus; optionally with pairwise-distinct zones."""

    picked, zones = [], set()
    for record in corpus_records:
        fingerprint = record.request.fingerprint
        zone = fingerprint.value_for_grouping(Attribute.TIMEZONE)
        if zone is None:
            continue
        if distinct_timezones and zone in zones:
            continue
        zones.add(zone)
        picked.append(fingerprint)
        if len(picked) == count:
            return picked
    raise AssertionError(f"corpus has fewer than {count} usable fingerprints")


def test_key_merge_migrates_temporal_state_between_workers(corpus, fitted):
    detector, _table, _verdicts = fitted
    fingerprints = _some_fingerprints(corpus.bot_store.records, 4, distinct_timezones=True)
    # r3 links cookie "m-a" (worker 0) with address .2 (worker 1): the
    # address's state must migrate, or r4 — the third distinct timezone
    # seen from .2 — would not be flagged (IP tolerance is 2 zones).
    plan = [
        ("m-a", "203.0.113.1", 9_000_001),
        ("m-b", "203.0.113.2", 9_000_002),
        ("m-a", "203.0.113.2", 9_000_003),
        ("m-c", "203.0.113.2", 9_000_004),
    ]
    records = [
        _record(fingerprint, cookie=cookie, ip=ip, timestamp=float(tick), request_id=rid)
        for tick, (fingerprint, (cookie, ip, rid)) in enumerate(zip(fingerprints, plan), start=1)
    ]

    def run(workers):
        with DetectionGateway(detector, workers=workers) as gateway:
            verdicts = {}
            for record in records:  # one-row batches force sequential routing
                verdicts.update(gateway.submit_records([record]))
            return verdicts, gateway.migrations

    parallel, migrations = run(workers=2)
    serial, _ = run(workers=1)
    assert migrations >= 1
    assert parallel == serial
    flags = parallel[9_000_004].temporal_flags
    assert any(flag.key_kind == "ip" and flag.key == "203.0.113.2" for flag in flags)


def test_migration_record_shape():
    migration = KeyMigration(kind="ip", key="203.0.113.9", source=1, target=0)
    assert migration.kind == "ip" and migration.source == 1 and migration.target == 0


# -- day-driven refresh ----------------------------------------------------------


def test_refresher_requires_exactly_one_interval_knob():
    with pytest.raises(ValueError, match="exactly one"):
        FilterListRefresher(window_rows=100)
    with pytest.raises(ValueError, match="exactly one"):
        FilterListRefresher(interval_batches=2, interval_days=1.0, window_rows=100)
    with pytest.raises(ValueError, match="interval_days"):
        FilterListRefresher(interval_days=0, window_rows=100)


def test_day_refresher_needs_timestamps(fitted):
    detector, table, _verdicts = fitted
    refresher = FilterListRefresher(interval_days=1.0, window_rows=100)
    stripped = table.with_columns({
        attribute: table.codes_of(attribute) for attribute in table.attributes
    })
    with pytest.raises(ValueError, match="timestamps"):
        refresher.observe_batch(stripped)


def test_day_refresher_fires_on_stream_clock(corpus, fitted):
    detector, _table, _verdicts = fitted
    refresher = FilterListRefresher(
        detector.miner, interval_days=20.0, window_rows=2_000
    )
    driver = ReplayDriver(detector, batch_size=256, refresher=refresher)
    result = driver.replay(corpus.bot_store)
    # A 90-day campaign crosses a 20-day cadence a few times — refreshes
    # happen, but far fewer than once per batch.
    assert 1 <= len(result.refreshes) < result.batches
    assert refresher.stream_day is not None and refresher.stream_day <= 90


def test_background_refresh_deploys_and_is_drained(corpus, fitted):
    detector, table, _verdicts = fitted
    refresher = FilterListRefresher(
        detector.miner, interval_days=20.0, window_rows=2_000
    )
    router = DeviceRouter.from_table(table, 2)
    with DetectionGateway(detector, router=router, refresher=refresher) as gateway:
        result = GatewayReplayDriver(gateway, batch_size=256).replay(corpus.bot_store)
        assert result.refreshes, "background refresh never deployed"
        for entry in result.refreshes:
            assert entry["rules"] > 0
            assert "stream_day" in entry
        # Every worker runs the deployed list: swap counts agree.
        swaps = {classifier.swaps for classifier in gateway.classifiers}
        assert swaps == {len(result.refreshes)}


def test_sync_gateway_refresh_matches_replay_driver(corpus, fitted):
    detector, _table, _verdicts = fitted

    def refresher():
        return FilterListRefresher(detector.miner, interval_days=15.0, window_rows=1_500)

    stream = ReplayDriver(detector, batch_size=256, refresher=refresher()).replay(
        corpus.bot_store
    )
    with DetectionGateway(
        detector, workers=1, refresher=refresher(), refresh_mode="sync"
    ) as gateway:
        served = GatewayReplayDriver(gateway, batch_size=256).replay(corpus.bot_store)
    # Synchronous refresh at the same boundaries: identical verdicts and
    # the same refresh schedule.
    assert verdicts_digest(served.verdicts) == verdicts_digest(stream.verdicts)
    assert [entry["batch"] for entry in served.refreshes] == [
        entry["batch"] + 1 for entry in stream.refreshes
    ]  # the gateway logs after its batch counter increments


def test_gateway_rejects_unknown_refresh_mode(fitted):
    detector, _table, _verdicts = fitted
    with pytest.raises(ValueError, match="refresh_mode"):
        DetectionGateway(detector, workers=1, refresh_mode="eventually")


# -- submission paths and lifecycle ----------------------------------------------


def test_submit_records_matches_submit_rows(corpus, fitted):
    detector, _table, _verdicts = fitted
    store = corpus.bot_store
    columns = store.columns
    order = np.argsort(columns.timestamps, kind="stable")

    with DetectionGateway(detector, workers=2) as by_rows:
        row_verdicts = {}
        for start in range(0, order.size, 256):
            row_verdicts.update(by_rows.submit_rows(columns, order[start : start + 256]))

    records = sorted(store, key=lambda record: record.timestamp)
    with DetectionGateway(detector, workers=2) as by_records:
        record_verdicts = {}
        for start in range(0, len(records), 256):
            record_verdicts.update(by_records.submit_records(records[start : start + 256]))

    assert verdicts_digest(row_verdicts) == verdicts_digest(record_verdicts)


def test_empty_batch_is_a_no_op(fitted):
    detector, _table, _verdicts = fitted
    with DetectionGateway(detector, workers=2) as gateway:
        assert gateway.submit_records([]) == {}
        assert gateway.rows_scored == 0


def test_closed_gateway_rejects_submissions(fitted):
    detector, _table, _verdicts = fitted
    gateway = DetectionGateway(detector, workers=2)
    gateway.close()
    gateway.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        gateway.submit_records([])


def test_serve_result_serialises_like_a_replay_result(corpus, fitted):
    detector, table, _verdicts = fitted
    router = DeviceRouter.from_table(table, 2)
    with DetectionGateway(detector, router=router) as gateway:
        result = GatewayReplayDriver(gateway, batch_size=512).replay(corpus.bot_store)
    assert result.rows_per_second > 0
    assert result.latency_quantile(0.5) <= result.latency_quantile(0.99)
    counts = result.counts()
    assert set(counts) == {"spatial", "temporal", "inconsistent"}
