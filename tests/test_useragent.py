"""Unit tests for User-Agent synthesis and parsing."""

import pytest

from repro.fingerprint.useragent import (
    build_user_agent,
    headless_user_agent,
    parse_user_agent,
)


def test_parse_iphone_safari():
    ua = build_user_agent("iPhone", "iOS", "Mobile Safari")
    parsed = parse_user_agent(ua)
    assert parsed.device == "iPhone"
    assert parsed.os == "iOS"
    assert parsed.browser == "Mobile Safari"


def test_parse_ipad():
    parsed = parse_user_agent(build_user_agent("iPad", "iOS", "Mobile Safari"))
    assert parsed.device == "iPad"
    assert parsed.os == "iOS"


def test_parse_mac_safari():
    parsed = parse_user_agent(build_user_agent("Mac", "Mac OS X", "Safari"))
    assert parsed.device == "Mac"
    assert parsed.os == "Mac OS X"
    assert parsed.browser == "Safari"


def test_parse_mac_chrome():
    parsed = parse_user_agent(build_user_agent("Mac", "Mac OS X", "Chrome"))
    assert parsed.device == "Mac"
    assert parsed.browser == "Chrome"


def test_parse_windows_chrome():
    parsed = parse_user_agent(build_user_agent("Windows PC", "Windows", "Chrome"))
    assert parsed.device == "Windows PC"
    assert parsed.os == "Windows"
    assert parsed.browser == "Chrome"


def test_parse_windows_edge():
    parsed = parse_user_agent(build_user_agent("Windows PC", "Windows", "Edge"))
    assert parsed.browser == "Edge"


def test_parse_windows_firefox():
    parsed = parse_user_agent(build_user_agent("Windows PC", "Windows", "Firefox"))
    assert parsed.browser == "Firefox"
    assert parsed.os == "Windows"


def test_parse_linux_chrome():
    parsed = parse_user_agent(build_user_agent("Linux PC", "Linux", "Chrome"))
    assert parsed.device == "Linux PC"
    assert parsed.os == "Linux"


def test_parse_android_model_chrome_mobile():
    ua = build_user_agent("SM-A515F", "Android", "Chrome Mobile", model="SM-A515F")
    parsed = parse_user_agent(ua)
    assert parsed.device == "SM-A515F"
    assert parsed.os == "Android"
    assert parsed.browser == "Chrome Mobile"


def test_parse_android_samsung_internet():
    ua = build_user_agent("SM-S906N", "Android", "Samsung Internet", model="SM-S906N")
    parsed = parse_user_agent(ua)
    assert parsed.browser == "Samsung Internet"
    assert parsed.device == "SM-S906N"


def test_parse_android_miui_browser():
    ua = build_user_agent("M2006C3MG", "Android", "MiuiBrowser", model="M2006C3MG")
    parsed = parse_user_agent(ua)
    assert parsed.browser == "MiuiBrowser"


def test_parse_chrome_mobile_ios():
    ua = build_user_agent("iPhone", "iOS", "Chrome Mobile iOS")
    parsed = parse_user_agent(ua)
    assert parsed.device == "iPhone"
    assert parsed.browser == "Chrome Mobile iOS"


def test_parse_headless_chrome_marker_present():
    ua = headless_user_agent()
    assert "HeadlessChrome" in ua


def test_parse_none_and_empty():
    assert parse_user_agent(None).device == "Other"
    assert parse_user_agent("").browser == "Other"


def test_parse_strips_android_build_suffix():
    ua = (
        "Mozilla/5.0 (Linux; Android 11; SM-A515F Build/RP1A.200720.012) "
        "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/110.0.0.0 Mobile Safari/537.36"
    )
    assert parse_user_agent(ua).device == "SM-A515F"


@pytest.mark.parametrize(
    "device,os_family,browser",
    [
        ("iPhone", "iOS", "Mobile Safari"),
        ("iPad", "iOS", "Mobile Safari"),
        ("Mac", "Mac OS X", "Safari"),
        ("Mac", "Mac OS X", "Chrome"),
        ("Mac", "Mac OS X", "Firefox"),
        ("Windows PC", "Windows", "Chrome"),
        ("Windows PC", "Windows", "Firefox"),
        ("Linux PC", "Linux", "Chrome"),
        ("Linux PC", "Linux", "Firefox"),
        ("Pixel 7", "Android", "Chrome Mobile"),
    ],
)
def test_round_trip_for_catalogue_families(device, os_family, browser):
    parsed = parse_user_agent(build_user_agent(device, os_family, browser, model=device))
    assert parsed.as_tuple() == (device, os_family, browser)
