"""Unit tests for the ML substrate (trees, ensembles, encoding, metrics)."""

import numpy as np
import pytest

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.ml.encoding import FingerprintEncoder, display_name
from repro.ml.explain import gain_importance, permutation_importance, rank_importances, top_features
from repro.ml.forest import GradientBoostingClassifier, RandomForestClassifier
from repro.ml.metrics import ConfusionMatrix, accuracy_score, confusion_matrix, train_test_split
from repro.ml.tree import DecisionTree


def _separable_dataset(n=400, seed=0):
    """Two clusters separable on feature 0; feature 1 is noise."""

    rng = np.random.default_rng(seed)
    x0 = np.concatenate([rng.normal(-2.0, 0.5, n // 2), rng.normal(2.0, 0.5, n // 2)])
    x1 = rng.normal(0.0, 1.0, n)
    features = np.column_stack([x0, x1])
    labels = np.concatenate([np.zeros(n // 2), np.ones(n // 2)])
    permutation = rng.permutation(n)
    return features[permutation], labels[permutation]


# -- metrics -------------------------------------------------------------------


def test_confusion_matrix_counts():
    matrix = confusion_matrix([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
    assert matrix.true_positive == 2
    assert matrix.false_negative == 1
    assert matrix.false_positive == 1
    assert matrix.true_negative == 1
    assert matrix.total == 5


def test_confusion_matrix_rates():
    matrix = ConfusionMatrix(true_positive=8, false_positive=2, true_negative=18, false_negative=2)
    assert matrix.accuracy == pytest.approx(26 / 30)
    assert matrix.precision == pytest.approx(0.8)
    assert matrix.recall == pytest.approx(0.8)
    assert matrix.true_negative_rate == pytest.approx(0.9)
    assert matrix.false_positive_rate == pytest.approx(0.1)
    assert 0.0 < matrix.f1 <= 1.0


def test_confusion_matrix_empty():
    matrix = ConfusionMatrix(0, 0, 0, 0)
    assert matrix.accuracy == 0.0
    assert matrix.precision == 0.0
    assert matrix.f1 == 0.0


def test_accuracy_score():
    assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        accuracy_score([1, 0], [1])


def test_train_test_split_shapes(rng):
    features = np.arange(100).reshape(50, 2)
    labels = np.arange(50)
    train_x, test_x, train_y, test_y = train_test_split(features, labels, test_fraction=0.2, rng=rng)
    assert train_x.shape[0] == 40 and test_x.shape[0] == 10
    assert set(np.concatenate([train_y, test_y])) == set(labels)
    with pytest.raises(ValueError):
        train_test_split(features, labels, test_fraction=1.5, rng=rng)


# -- decision tree -----------------------------------------------------------------


def test_tree_learns_separable_data():
    features, labels = _separable_dataset()
    tree = DecisionTree(max_depth=3).fit(features, labels)
    assert accuracy_score(labels, tree.predict(features)) > 0.95
    assert tree.depth >= 1
    assert tree.node_count >= 3


def test_tree_feature_importance_identifies_signal():
    features, labels = _separable_dataset()
    tree = DecisionTree(max_depth=3).fit(features, labels)
    importances = tree.feature_importances()
    assert importances[0] > importances[1]
    assert importances.sum() == pytest.approx(1.0)


def test_tree_predict_proba_bounds():
    features, labels = _separable_dataset()
    tree = DecisionTree(max_depth=4).fit(features, labels)
    proba = tree.predict_proba(features)
    assert np.all(proba >= 0.0) and np.all(proba <= 1.0)


def test_tree_pure_node_stops_splitting():
    features = np.zeros((30, 2))
    labels = np.zeros(30)
    tree = DecisionTree(max_depth=5).fit(features, labels)
    assert tree.node_count == 1
    assert np.all(tree.predict(features) == 0)


def test_tree_regression_mode():
    rng = np.random.default_rng(0)
    features = rng.random((300, 1))
    targets = 3.0 * features[:, 0]
    tree = DecisionTree(max_depth=6, task="regression").fit(features, targets)
    predictions = tree.predict(features)
    assert np.mean((predictions - targets) ** 2) < 0.05


def test_tree_validation_errors():
    with pytest.raises(ValueError):
        DecisionTree(task="clustering")
    with pytest.raises(ValueError):
        DecisionTree(max_depth=0)
    tree = DecisionTree()
    with pytest.raises(ValueError):
        tree.fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(RuntimeError):
        tree.predict(np.zeros((1, 2)))


def test_tree_decision_path():
    features, labels = _separable_dataset()
    tree = DecisionTree(max_depth=3).fit(features, labels)
    path = tree.decision_path(features[0])
    assert path and all(len(step) == 3 for step in path)


# -- ensembles --------------------------------------------------------------------


def test_random_forest_accuracy_and_importance():
    features, labels = _separable_dataset(600)
    forest = RandomForestClassifier(n_estimators=8, max_depth=4, random_state=1).fit(features, labels)
    assert accuracy_score(labels, forest.predict(features)) > 0.95
    importances = forest.feature_importances()
    assert importances[0] > importances[1]


def test_random_forest_proba_bounds():
    features, labels = _separable_dataset(200)
    forest = RandomForestClassifier(n_estimators=5, max_depth=3).fit(features, labels)
    proba = forest.predict_proba(features)
    assert np.all((proba >= 0.0) & (proba <= 1.0))


def test_random_forest_unfitted_raises():
    with pytest.raises(RuntimeError):
        RandomForestClassifier().predict(np.zeros((1, 2)))
    with pytest.raises(ValueError):
        RandomForestClassifier(n_estimators=0)


def test_gradient_boosting_accuracy():
    features, labels = _separable_dataset(600)
    model = GradientBoostingClassifier(n_estimators=15, max_depth=3, random_state=1).fit(features, labels)
    assert accuracy_score(labels, model.predict(features)) > 0.95
    importances = model.feature_importances()
    assert importances[0] > importances[1]


def test_gradient_boosting_validation():
    with pytest.raises(ValueError):
        GradientBoostingClassifier(learning_rate=0.0)
    with pytest.raises(RuntimeError):
        GradientBoostingClassifier().predict_proba(np.zeros((1, 2)))


# -- explainability ----------------------------------------------------------------------


def test_rank_importances_sorted():
    ranked = rank_importances(["a", "b", "c"], [0.1, 0.7, 0.2])
    assert [item.feature for item in ranked] == ["b", "c", "a"]
    assert top_features(ranked, 2) == ["b", "c"]
    with pytest.raises(ValueError):
        rank_importances(["a"], [0.1, 0.2])


def test_permutation_importance_finds_signal_feature():
    features, labels = _separable_dataset(400)
    forest = RandomForestClassifier(n_estimators=6, max_depth=4).fit(features, labels)
    ranked = permutation_importance(
        forest, features, labels, ["signal", "noise"], rng=np.random.default_rng(0)
    )
    assert ranked[0].feature == "signal"


def test_gain_importance_names_match():
    features, labels = _separable_dataset(200)
    forest = RandomForestClassifier(n_estimators=4, max_depth=3).fit(features, labels)
    ranked = gain_importance(forest, ["signal", "noise"])
    assert {item.feature for item in ranked} == {"signal", "noise"}


# -- encoding -------------------------------------------------------------------------------


def _fingerprints():
    return [
        Fingerprint(
            {
                Attribute.UA_DEVICE: "iPhone",
                Attribute.VENDOR: "Apple Computer, Inc.",
                Attribute.HARDWARE_CONCURRENCY: 4,
                Attribute.FORCED_COLORS: False,
                Attribute.SCREEN_RESOLUTION: (390, 844),
                Attribute.PLUGINS: (),
            }
        ),
        Fingerprint(
            {
                Attribute.UA_DEVICE: "Windows PC",
                Attribute.VENDOR: "Google Inc.",
                Attribute.HARDWARE_CONCURRENCY: 16,
                Attribute.FORCED_COLORS: True,
                Attribute.SCREEN_RESOLUTION: (1920, 1080),
                Attribute.PLUGINS: ("Chrome PDF Viewer",),
            }
        ),
    ]


def test_encoder_shape_and_names():
    encoder = FingerprintEncoder()
    matrix = encoder.fit_transform(_fingerprints())
    assert matrix.shape == (2, len(encoder.attributes))
    assert "Hardware Concurrency" in encoder.feature_names


def test_encoder_numeric_and_boolean_passthrough():
    encoder = FingerprintEncoder(attributes=(Attribute.HARDWARE_CONCURRENCY, Attribute.FORCED_COLORS))
    matrix = encoder.fit_transform(_fingerprints())
    assert matrix[0, 0] == 4 and matrix[1, 0] == 16
    assert matrix[0, 1] == 0.0 and matrix[1, 1] == 1.0


def test_encoder_categorical_codes_stable():
    encoder = FingerprintEncoder(attributes=(Attribute.UA_DEVICE,))
    matrix = encoder.fit_transform(_fingerprints())
    assert matrix[0, 0] != matrix[1, 0]
    codes = encoder.categories_of(Attribute.UA_DEVICE)
    assert set(codes) == {"iPhone", "Windows PC"}


def test_encoder_unseen_category_is_minus_one():
    encoder = FingerprintEncoder(attributes=(Attribute.UA_DEVICE,))
    encoder.fit(_fingerprints())
    unseen = Fingerprint({Attribute.UA_DEVICE: "Mac"})
    assert encoder.transform([unseen])[0, 0] == -1.0


def test_encoder_requires_fit():
    encoder = FingerprintEncoder()
    with pytest.raises(RuntimeError):
        encoder.transform(_fingerprints())
    with pytest.raises(ValueError):
        encoder.fit([])


def test_display_name_known_and_fallback():
    assert display_name(Attribute.VENDOR_FLAVORS) == "Vendor Flavors"
    assert display_name(Attribute.CANVAS) == "Canvas"
