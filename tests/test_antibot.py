"""Unit tests for the DataDome and BotD detector models."""

import pytest

from repro.antibot.botd import BotDModel
from repro.antibot.datadome import DataDomeModel
from repro.antibot.signals import API_ACCESS, apis_read_by
from repro.bots.strategies import (
    apply_forced_colors,
    apply_low_concurrency,
    apply_plugin_injection,
    apply_server_concurrency,
    apply_touch_spoof,
    apply_webdriver_leak,
    base_bot_fingerprint,
)
from repro.devices.catalog import DeviceCatalog
from repro.geo.geolite import GeoDatabase
from repro.network.request import WebRequest


@pytest.fixture
def geo():
    return GeoDatabase()


def _request(fingerprint, ip_address, path="/token"):
    return WebRequest(url_path=path, timestamp=0.0, ip_address=ip_address, fingerprint=fingerprint)


def _datacenter_ip(geo, rng):
    return geo.allocate_address(rng, country="United States of America", datacenter=True)


def _residential_ip(geo, rng):
    return geo.allocate_address(rng, country="United States of America", datacenter=False)


# -- BotD ------------------------------------------------------------------------


def test_botd_flags_bare_headless_browser(geo, rng):
    fingerprint = base_bot_fingerprint(rng)
    decision = BotDModel(geo).evaluate(_request(fingerprint, _datacenter_ip(geo, rng)))
    assert decision.is_bot
    assert "no_plugins_no_touch" in decision.signals


def test_botd_blind_spot_plugins(geo, rng):
    fingerprint = apply_plugin_injection(base_bot_fingerprint(rng), rng)
    decision = BotDModel(geo).evaluate(_request(fingerprint, _datacenter_ip(geo, rng)))
    assert not decision.is_bot


def test_botd_blind_spot_touch(geo, rng):
    fingerprint = apply_touch_spoof(base_bot_fingerprint(rng), rng)
    decision = BotDModel(geo).evaluate(_request(fingerprint, _datacenter_ip(geo, rng)))
    assert not decision.is_bot


def test_botd_flags_webdriver_even_with_plugins(geo, rng):
    fingerprint = apply_webdriver_leak(apply_plugin_injection(base_bot_fingerprint(rng), rng))
    decision = BotDModel(geo).evaluate(_request(fingerprint, _datacenter_ip(geo, rng)))
    assert decision.is_bot
    assert "webdriver_flag" in decision.signals


def test_botd_accepts_real_devices(geo, rng):
    catalog = DeviceCatalog()
    model = BotDModel(geo)
    for profile in catalog:
        request = _request(profile.fingerprint(), _residential_ip(geo, rng))
        assert not model.evaluate(request).is_bot, profile.name


# -- DataDome -----------------------------------------------------------------------


def test_datadome_flags_datacenter_server_cores(geo, rng):
    fingerprint = apply_server_concurrency(base_bot_fingerprint(rng), rng)
    decision = DataDomeModel(geo).evaluate(_request(fingerprint, _datacenter_ip(geo, rng)))
    assert decision.is_bot
    assert "datacenter_address_space" in decision.signals


def test_datadome_blind_spot_low_concurrency(geo, rng):
    fingerprint = apply_low_concurrency(base_bot_fingerprint(rng), rng)
    decision = DataDomeModel(geo).evaluate(_request(fingerprint, _datacenter_ip(geo, rng)))
    assert not decision.is_bot


def test_datadome_forced_colors_always_detected(geo, rng):
    fingerprint = apply_forced_colors(apply_low_concurrency(base_bot_fingerprint(rng), rng))
    decision = DataDomeModel(geo).evaluate(_request(fingerprint, _datacenter_ip(geo, rng)))
    assert decision.is_bot
    assert "forced_colors_active" in decision.signals


def test_datadome_flags_webdriver_anywhere(geo, rng):
    fingerprint = apply_webdriver_leak(base_bot_fingerprint(rng))
    decision = DataDomeModel(geo).evaluate(_request(fingerprint, _residential_ip(geo, rng)))
    assert decision.is_bot


def test_datadome_accepts_real_devices_from_residential_space(geo, rng):
    catalog = DeviceCatalog()
    model = DataDomeModel(geo)
    for profile in catalog:
        for cores in profile.hardware_concurrency_options:
            fingerprint = profile.fingerprint(hardware_concurrency=cores)
            request = _request(fingerprint, _residential_ip(geo, rng))
            assert not model.evaluate(request).is_bot, profile.name


def test_datadome_without_geo_database_is_lenient(rng):
    model = DataDomeModel(geo=None)
    fingerprint = apply_server_concurrency(base_bot_fingerprint(rng), rng)
    decision = model.evaluate(_request(fingerprint, "203.0.113.1"))
    assert not decision.is_bot


def test_decision_evaded_property(geo, rng):
    decision = BotDModel(geo).evaluate(
        _request(apply_plugin_injection(base_bot_fingerprint(rng), rng), _datacenter_ip(geo, rng))
    )
    assert decision.evaded == (not decision.is_bot)


# -- Table 5 API inventory -------------------------------------------------------------


def test_api_access_datadome_reads_more_apis_than_botd():
    assert len(apis_read_by("DataDome")) > len(apis_read_by("BotD"))


def test_api_access_key_entries():
    assert API_ACCESS["window.navigator.hardwareConcurrency"]["DataDome"]
    assert not API_ACCESS["window.navigator.hardwareConcurrency"]["BotD"]
    assert API_ACCESS["window.navigator.plugins"]["BotD"]
    assert "window.navigator.userAgent" in apis_read_by("BotD")
