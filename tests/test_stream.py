"""Tests for the streaming detection subsystem (``repro.stream``).

The subsystem's contract is exactness, not approximation: a full corpus
replay with a frozen filter list must reproduce the batch pipeline's
verdicts bit for bit, for any micro-batch size, over either physical
record representation.  These tests pin that oracle plus the pieces it
rests on — growing-vocabulary ingestion identical to one-shot extraction,
incremental temporal state identical to the self-contained batch
evaluation, and window re-mining identical to mining a fresh extraction
of the same rows.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.engine import CorpusEngine
from repro.core.columnar import ColumnarTable
from repro.core.detector import FPInconsistent
from repro.core.pipeline import FPInconsistentPipeline
from repro.core.rules import FilterList
from repro.core.spatial import SpatialInconsistencyMiner
from repro.core.temporal import TemporalInconsistencyDetector
from repro.honeysite.storage import LazyRequestStore, RecordColumnsBuilder, RequestStore
from repro.stream import (
    FilterListRefresher,
    OnlineClassifier,
    ReplayDriver,
    StreamIngestor,
    verdicts_digest,
    verdicts_to_jsonable,
)

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    include_privacy=True,
    real_user_requests=120,
    privacy_requests_each=12,
)


@pytest.fixture(scope="module")
def corpus():
    """A columnar-transport corpus (lazy store + pre-extracted tables)."""

    return CorpusEngine(**TINY).build(workers=1)


@pytest.fixture(scope="module")
def fitted(corpus):
    """(detector, bot table, batch verdicts): the streaming oracle."""

    detector = FPInconsistent()
    table = detector.extract_table(corpus.bot_store)
    detector.fit_table(table)
    verdicts = detector.classify_table(table)
    return detector, table, verdicts


# -- the replay oracle -----------------------------------------------------------


@pytest.mark.parametrize("batch_size", [37, 256, 1_000_000])
def test_replay_matches_batch_pipeline_across_batch_sizes(corpus, fitted, batch_size):
    detector, _table, batch_verdicts = fitted
    store = corpus.bot_store
    result = ReplayDriver(detector, batch_size=batch_size).replay(store)
    assert result.rows == len(store)
    assert result.batches == -(-len(store) // batch_size)
    assert result.verdicts == batch_verdicts
    # ... and byte-identical once serialised (what the CI smoke asserts).
    assert verdicts_digest(result.verdicts) == verdicts_digest(batch_verdicts)
    assert not store.materialized  # the columnar replay path touches no record


def test_replay_object_store_matches_columnar_replay(corpus, fitted):
    detector, _table, batch_verdicts = fitted
    object_store = RequestStore(list(corpus.bot_store))
    result = ReplayDriver(detector, batch_size=313).replay(object_store)
    assert result.verdicts == batch_verdicts


def test_replay_reproduces_pipeline_verdicts(corpus):
    pipeline = FPInconsistentPipeline()
    outcome = pipeline.run(corpus.bot_store, bot_table=corpus.columnar_tables.get("bots"))
    deployed = FPInconsistent(filter_list=outcome.filter_list)
    result = ReplayDriver(deployed, batch_size=256).replay(corpus.bot_store)
    assert result.verdicts == outcome.verdicts
    counts = result.counts()
    assert counts["spatial"] > 0 and counts["temporal"] > 0
    assert counts["inconsistent"] >= max(counts["spatial"], counts["temporal"])


def test_verdict_serialisation_is_canonical(fitted):
    _detector, _table, batch_verdicts = fitted
    document = verdicts_to_jsonable(batch_verdicts)
    assert [entry["request_id"] for entry in document] == sorted(batch_verdicts)
    json.dumps(document)  # strictly JSON-able
    trimmed = dict(batch_verdicts)
    trimmed.pop(next(iter(trimmed)))
    assert verdicts_digest(trimmed) != verdicts_digest(batch_verdicts)


# -- ingestion -------------------------------------------------------------------


def test_single_batch_ingest_matches_from_store_extraction(corpus, fitted):
    detector, _table, _verdicts = fitted
    store = corpus.bot_store
    attributes = detector.table_attributes()
    reference = ColumnarTable.from_store(store, attributes=attributes)

    ingestor = StreamIngestor(attributes=attributes)
    rows = np.arange(len(store), dtype=np.int64)  # store order, like from_store
    batch = ingestor.ingest_rows(store.columns, rows)
    assert batch.attributes == reference.attributes
    for attribute in attributes:
        assert np.array_equal(batch.codes_of(attribute), reference.codes_of(attribute))
        assert batch.values_of(attribute) == reference.values_of(attribute)
    assert np.array_equal(batch.request_ids, reference.request_ids)
    assert np.array_equal(batch.timestamps, reference.timestamps)
    assert np.array_equal(batch.cookie_codes, reference.cookie_codes)
    assert batch.cookie_values == reference.cookie_values
    assert np.array_equal(batch.ip_codes, reference.ip_codes)
    assert batch.ip_values == reference.ip_values


def test_ingest_records_matches_ingest_rows(corpus, fitted):
    detector, _table, _verdicts = fitted
    store = corpus.bot_store
    attributes = detector.table_attributes()
    records = list(store)

    from_rows = StreamIngestor(attributes=attributes)
    from_records = StreamIngestor(attributes=attributes)
    for start in range(0, len(store), 400):
        rows = np.arange(start, min(start + 400, len(store)), dtype=np.int64)
        row_batch = from_rows.ingest_rows(store.columns, rows)
        record_batch = from_records.ingest_records(records[start : start + 400])
        for attribute in attributes:
            assert np.array_equal(
                row_batch.codes_of(attribute), record_batch.codes_of(attribute)
            )
        assert np.array_equal(row_batch.cookie_codes, record_batch.cookie_codes)
        assert np.array_equal(row_batch.ip_codes, record_batch.ip_codes)
        assert np.array_equal(row_batch.request_ids, record_batch.request_ids)
    for attribute in attributes:
        assert from_rows.vocabulary_sizes()[attribute] == from_records.vocabulary_sizes()[
            attribute
        ]


def test_vocabulary_only_grows_and_codes_stay_stable(corpus, fitted):
    detector, _table, _verdicts = fitted
    store = corpus.bot_store
    half = len(store) // 2
    ingestor = StreamIngestor(attributes=detector.table_attributes())
    first = ingestor.ingest_rows(store.columns, np.arange(half, dtype=np.int64))
    snapshot_codes = {
        attribute: first.codes_of(attribute).copy() for attribute in first.attributes
    }
    snapshot_values = {
        attribute: list(first.values_of(attribute)) for attribute in first.attributes
    }
    ingestor.ingest_rows(store.columns, np.arange(half, len(store), dtype=np.int64))
    for attribute in first.attributes:
        # Earlier batches stay decodable: codes unchanged, decode lists
        # extended append-only.
        assert np.array_equal(first.codes_of(attribute), snapshot_codes[attribute])
        grown = first.values_of(attribute)
        assert grown[: len(snapshot_values[attribute])] == snapshot_values[attribute]
    assert ingestor.rows_ingested == len(store)
    assert ingestor.batches_emitted == 2


def test_ingest_rows_requires_renumbered_columns(corpus):
    builder_columns = corpus.bot_store.columns.take(np.arange(5, dtype=np.int64))
    builder_columns.request_ids = None
    with pytest.raises(ValueError, match="renumbered"):
        StreamIngestor().ingest_rows(builder_columns, np.arange(5, dtype=np.int64))


# -- incremental temporal state --------------------------------------------------


@pytest.mark.parametrize("slice_size", [53, 700])
def test_incremental_temporal_matches_batch_evaluation(fitted, slice_size):
    _detector, table, _verdicts = fitted
    temporal = TemporalInconsistencyDetector()
    full = temporal.evaluate_table(table)

    streaming = TemporalInconsistencyDetector()
    state = streaming.new_stream_state()
    order = np.argsort(table.timestamps, kind="stable")
    merged = {}
    for start in range(0, table.n_rows, slice_size):
        merged.update(
            streaming.observe_table(table.take(order[start : start + slice_size]), state)
        )
    assert merged == full
    assert state.tracked_devices > 0
    assert state.observed_values() >= state.tracked_devices


def test_observe_table_requires_metadata(fitted):
    detector, table, _verdicts = fitted
    temporal = detector.temporal_detector
    bare = table.select(table.attributes)  # no request metadata
    with pytest.raises(ValueError, match="from_store"):
        temporal.observe_table(bare, temporal.new_stream_state())


def test_classify_table_rejects_sharded_incremental_state(fitted):
    detector, table, _verdicts = fitted
    state = detector.temporal_detector.new_stream_state()
    with pytest.raises(ValueError, match="workers=1"):
        detector.classify_table(table, workers=2, temporal_state=state)


# -- online classifier -----------------------------------------------------------


def test_online_classifier_isolates_the_fitted_detector(fitted):
    detector, table, _verdicts = fitted
    rules_before = len(detector.filter_list)
    classifier = OnlineClassifier(detector)
    classifier.classify_batch(table.take(np.arange(50, dtype=np.int64)))
    classifier.swap_filter_list(FilterList())
    assert classifier.swaps == 1
    assert len(classifier.filter_list) == 0
    assert len(detector.filter_list) == rules_before  # source untouched
    assert len(detector.temporal_detector._seen) == 0  # no state leaked


def test_filter_list_setter_rejects_non_lists(fitted):
    detector, _table, _verdicts = fitted
    with pytest.raises(TypeError):
        detector.filter_list = ["not", "a", "list"]


# -- filter-list refresh ---------------------------------------------------------


def test_window_mining_matches_fresh_extraction(corpus, fitted):
    detector, _table, _verdicts = fitted
    store = corpus.bot_store
    attributes = detector.table_attributes()
    ingestor = StreamIngestor(attributes=attributes)
    refresher = FilterListRefresher(interval_batches=1, window_rows=10**9)
    order = np.argsort(store.columns.timestamps, kind="stable")
    for start in range(0, len(store), 500):
        refresher.observe_batch(
            ingestor.ingest_rows(store.columns, order[start : start + 500])
        )
    mined_stream = refresher.refresh()

    ordered = sorted(store, key=lambda record: record.timestamp)
    fresh = ColumnarTable.from_fingerprints(
        [record.request.fingerprint for record in ordered], attributes
    )
    mined_fresh = SpatialInconsistencyMiner().mine_table(fresh)
    assert [rule.to_dict() for rule in mined_stream] == [
        rule.to_dict() for rule in mined_fresh
    ]


def test_sliding_window_keeps_exactly_the_last_rows(corpus, fitted):
    detector, _table, _verdicts = fitted
    store = corpus.bot_store
    attributes = detector.table_attributes()
    window = 700
    ingestor = StreamIngestor(attributes=attributes)
    refresher = FilterListRefresher(interval_batches=1, window_rows=window)
    order = np.argsort(store.columns.timestamps, kind="stable")
    for start in range(0, len(store), 256):  # misaligned with the window on purpose
        refresher.observe_batch(
            ingestor.ingest_rows(store.columns, order[start : start + 256])
        )
    assert refresher.rows_in_window == window

    ordered = sorted(store, key=lambda record: record.timestamp)[-window:]
    fresh = ColumnarTable.from_fingerprints(
        [record.request.fingerprint for record in ordered], attributes
    )
    assert [rule.to_dict() for rule in refresher.refresh()] == [
        rule.to_dict() for rule in SpatialInconsistencyMiner().mine_table(fresh)
    ]


def test_replay_hot_swaps_at_batch_boundaries(corpus, fitted):
    detector, _table, _verdicts = fitted
    refresher = FilterListRefresher(
        detector.miner, interval_batches=2, window_rows=1_000
    )
    result = ReplayDriver(detector, batch_size=300, refresher=refresher).replay(
        corpus.bot_store
    )
    assert result.refreshes
    batches = [entry["batch"] for entry in result.refreshes]
    assert batches == sorted(batches)
    assert all((index + 1) % 2 == 0 for index in batches)
    assert all(entry["rules"] > 0 for entry in result.refreshes)


def test_refresher_validates_knobs():
    with pytest.raises(ValueError):
        FilterListRefresher(interval_batches=0, window_rows=10)
    with pytest.raises(ValueError):
        FilterListRefresher(interval_batches=1, window_rows=0)
    with pytest.raises(ValueError):
        FilterListRefresher(interval_batches=1, window_rows=10, workers=0)
    with pytest.raises(ValueError, match="window is empty"):
        FilterListRefresher(interval_batches=1, window_rows=10).refresh()


# -- edges -----------------------------------------------------------------------


def test_replay_of_an_empty_store(fitted):
    detector, _table, _verdicts = fitted
    empty = LazyRequestStore(RecordColumnsBuilder().columns().renumbered())
    result = ReplayDriver(detector, batch_size=64).replay(empty)
    assert result.rows == 0 and result.batches == 0
    assert result.verdicts == {}
    assert result.rows_per_second == 0.0
    assert result.latency_quantile(0.5) == 0.0
    assert result.counts() == {"spatial": 0, "temporal": 0, "inconsistent": 0}


def test_replay_driver_validates_batch_size(fitted):
    detector, _table, _verdicts = fitted
    with pytest.raises(ValueError):
        ReplayDriver(detector, batch_size=0)


def test_latency_quantiles_are_ordered(corpus, fitted):
    detector, _table, _verdicts = fitted
    result = ReplayDriver(detector, batch_size=128).replay(corpus.bot_store)
    p50, p99 = result.latency_quantile(0.50), result.latency_quantile(0.99)
    assert 0 < p50 <= p99
    with pytest.raises(ValueError):
        result.latency_quantile(1.5)
