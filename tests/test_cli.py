"""Tests for the ``repro`` command line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_corpus_summary(capsys, tmp_path):
    out_path = tmp_path / "store.jsonl.gz"
    code, out, err = run_cli(
        capsys,
        "corpus",
        "--seed", "5",
        "--scale", "0.002",
        "--no-real-users",
        "--no-cache",
        "--out", str(out_path),
    )
    assert code == 0
    assert "uncached build" in err
    summary = json.loads(out)
    assert summary["seed"] == 5
    assert summary["records"] == summary["bot_requests"] > 0
    assert out_path.is_file()


def test_corpus_cache_miss_then_hit(capsys, tmp_path):
    argv = (
        "corpus",
        "--seed", "5",
        "--scale", "0.002",
        "--no-real-users",
        "--cache", str(tmp_path),
    )
    code, out, err = run_cli(capsys, *argv)
    assert code == 0 and "cache miss" in err
    code, out2, err = run_cli(capsys, *argv)
    assert code == 0 and "cache hit" in err
    assert json.loads(out) == json.loads(out2)


def test_pipeline_summary(capsys):
    code, out, err = run_cli(
        capsys,
        "pipeline",
        "--seed", "5",
        "--scale", "0.003",
        "--no-cache",
        "--workers", "2",
        "--executor", "thread",
    )
    assert code == 0
    summary = json.loads(out)
    assert set(summary["evasion_reduction"]) == {"DataDome", "BotD"}
    assert summary["rules"] > 0
    assert 0.0 <= summary["real_user_tnr"] <= 1.0


def test_bench_writes_document(capsys, tmp_path):
    output = tmp_path / "bench.json"
    code, out, err = run_cli(
        capsys,
        "bench",
        "--scales", "0.002",
        "--workers-list", "1,2",
        "--executor", "thread",
        "--output", str(output),
    )
    assert code == 0
    document = json.loads(output.read_text())
    assert document["benchmark"] == "corpus_scaling"
    assert document["scales"][0]["engine"][0]["workers"] == 1
    assert document["scales"][0]["serial_seconds"] > 0


def test_bench_check_speedup_can_fail(capsys, tmp_path):
    code, _out, err = run_cli(
        capsys,
        "bench",
        "--scales", "0.002",
        "--workers-list", "1",
        "--executor", "thread",
        "--output", str(tmp_path / "bench.json"),
        "--check-speedup", "1000",
    )
    assert code == 1
    assert "FAIL" in err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_pipeline_json_document(capsys, tmp_path):
    json_path = tmp_path / "pipeline.json"
    code, out, err = run_cli(
        capsys,
        "pipeline",
        "--seed", "5",
        "--scale", "0.003",
        "--no-cache",
        "--workers", "2",
        "--executor", "thread",
        "--json", str(json_path),
    )
    assert code == 0
    document = json.loads(json_path.read_text())
    assert document["engine"] == "columnar"
    assert len(document["filter_list"]) == document["rules"] > 0
    assert set(document["table4"]) == {"DataDome", "BotD"}
    assert json.loads(out)["saved_to"] == str(json_path)


def test_pipeline_engines_agree(capsys):
    argv = ("pipeline", "--seed", "5", "--scale", "0.003", "--no-cache", "--no-real-users")
    code, out_columnar, _ = run_cli(capsys, *argv, "--engine", "columnar")
    assert code == 0
    code, out_legacy, _ = run_cli(capsys, *argv, "--engine", "legacy")
    assert code == 0
    columnar = json.loads(out_columnar)
    legacy = json.loads(out_legacy)
    # engine and table_sources describe *how* the evaluation ran, not what
    # it produced; everything else must agree across engines.
    del columnar["engine"], legacy["engine"]
    del columnar["table_sources"], legacy["table_sources"]
    assert columnar == legacy


def test_stream_replays_and_verifies_against_batch(capsys, tmp_path):
    out_path = tmp_path / "stream.json"
    code, out, err = run_cli(
        capsys,
        "stream",
        "--seed", "5",
        "--scale", "0.003",
        "--no-cache",
        "--batch-size", "200",
        "--verify-batch",
        "--json", str(out_path),
    )
    assert code == 0
    assert "verdicts byte-identical to batch pipeline" in err
    summary = json.loads(out)
    assert summary["batch_size"] == 200
    assert summary["batches"] == -(-summary["rows"] // 200)
    assert summary["rules"] > 0
    assert summary["verdicts"]["inconsistent"] > 0
    assert 0 < summary["p50_batch_ms"] <= summary["p99_batch_ms"]
    document = json.loads(out_path.read_text())
    assert len(document["batch_seconds"]) == summary["batches"]
    assert len(document["verdicts_digest"]) == 64


def test_stream_refresh_hot_swaps(capsys):
    code, out, err = run_cli(
        capsys,
        "stream",
        "--seed", "5",
        "--scale", "0.003",
        "--no-cache",
        "--batch-size", "250",
        "--refresh-every", "3",
        "--window", "1000",
    )
    assert code == 0
    summary = json.loads(out)
    assert summary["refreshes"]
    assert all(entry["rules"] > 0 for entry in summary["refreshes"])


@pytest.mark.parametrize(
    "argv, message",
    [
        (("pipeline", "--workers", "0"), "--workers must be >= 1"),
        (("corpus", "--scale", "-1"), "--scale must be positive"),
        (("corpus", "--workers", "-2"), "--workers must be >= 1"),
        (("pipeline", "--campaign-days", "0"), "--campaign-days must be >= 1"),
        (("corpus", "--real-user-requests", "-5"), "cannot be negative"),
        (("bench", "--scales", "0"), "scales must be positive"),
        (("bench", "--workers-list", "0"), "worker counts must be >= 1"),
        (("bench", "--seed", "-1"), "--seed must be non-negative"),
        (("stream", "--batch-size", "0"), "--batch-size must be >= 1"),
        (("stream", "--refresh-every", "-1"), "--refresh-every cannot be negative"),
        (("stream", "--window", "0"), "--window must be >= 1"),
        (("stream", "--verify-batch", "--refresh-every", "2"), "frozen filter list"),
        (("stream", "--workers", "0"), "--workers must be >= 1"),
    ],
)
def test_bad_knobs_fail_fast(capsys, argv, message):
    with pytest.raises(SystemExit) as excinfo:
        main(list(argv))
    assert excinfo.value.code == 2
    assert message in capsys.readouterr().err


def test_bad_executor_env_fails_cleanly(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
    with pytest.raises(SystemExit) as excinfo:
        main(["corpus", "--scale", "0.002", "--no-cache"])
    assert excinfo.value.code == 2
    assert "REPRO_EXECUTOR" in capsys.readouterr().err


def test_bad_workers_env_fails_cleanly(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "zero")
    with pytest.raises(SystemExit) as excinfo:
        main(["corpus", "--scale", "0.002", "--no-cache"])
    assert excinfo.value.code == 2
    assert "REPRO_WORKERS" in capsys.readouterr().err
