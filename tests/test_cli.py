"""Tests for the ``repro`` command line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_corpus_summary(capsys, tmp_path):
    out_path = tmp_path / "store.jsonl.gz"
    code, out, err = run_cli(
        capsys,
        "corpus",
        "--seed", "5",
        "--scale", "0.002",
        "--no-real-users",
        "--no-cache",
        "--out", str(out_path),
    )
    assert code == 0
    assert "uncached build" in err
    summary = json.loads(out)
    assert summary["seed"] == 5
    assert summary["records"] == summary["bot_requests"] > 0
    assert out_path.is_file()


def test_corpus_cache_miss_then_hit(capsys, tmp_path):
    argv = (
        "corpus",
        "--seed", "5",
        "--scale", "0.002",
        "--no-real-users",
        "--cache", str(tmp_path),
    )
    code, out, err = run_cli(capsys, *argv)
    assert code == 0 and "cache miss" in err
    code, out2, err = run_cli(capsys, *argv)
    assert code == 0 and "cache hit" in err
    assert json.loads(out) == json.loads(out2)


def test_pipeline_summary(capsys):
    code, out, err = run_cli(
        capsys,
        "pipeline",
        "--seed", "5",
        "--scale", "0.003",
        "--no-cache",
        "--workers", "2",
        "--executor", "thread",
    )
    assert code == 0
    summary = json.loads(out)
    assert set(summary["evasion_reduction"]) == {"DataDome", "BotD"}
    assert summary["rules"] > 0
    assert 0.0 <= summary["real_user_tnr"] <= 1.0


def test_bench_writes_document(capsys, tmp_path):
    output = tmp_path / "bench.json"
    code, out, err = run_cli(
        capsys,
        "bench",
        "--scales", "0.002",
        "--workers-list", "1,2",
        "--executor", "thread",
        "--output", str(output),
    )
    assert code == 0
    document = json.loads(output.read_text())
    assert document["benchmark"] == "corpus_scaling"
    assert document["scales"][0]["engine"][0]["workers"] == 1
    assert document["scales"][0]["serial_seconds"] > 0


def test_bench_check_speedup_can_fail(capsys, tmp_path):
    code, _out, err = run_cli(
        capsys,
        "bench",
        "--scales", "0.002",
        "--workers-list", "1",
        "--executor", "thread",
        "--output", str(tmp_path / "bench.json"),
        "--check-speedup", "1000",
    )
    assert code == 1
    assert "FAIL" in err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])
