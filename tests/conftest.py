"""Shared fixtures.

A small-scale corpus (including real users and the privacy experiment) is
built once per session and reused by the analysis and integration tests so
the suite stays fast while still exercising the full pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.corpus import build_corpus
from repro.core.pipeline import FPInconsistentPipeline
from repro.devices.catalog import DeviceCatalog
from repro.geo.geolite import GeoDatabase


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def catalog() -> DeviceCatalog:
    return DeviceCatalog()


@pytest.fixture
def geo() -> GeoDatabase:
    return GeoDatabase()


@pytest.fixture(scope="session")
def small_corpus():
    """A ~4k-request corpus with bots, real users and privacy traffic."""

    return build_corpus(
        seed=11,
        scale=0.008,
        include_real_users=True,
        include_privacy=True,
        real_user_requests=600,
        privacy_requests_each=40,
    )


@pytest.fixture(scope="session")
def pipeline_result(small_corpus):
    """FP-Inconsistent mined and evaluated on the shared corpus."""

    pipeline = FPInconsistentPipeline()
    return pipeline.run(
        small_corpus.bot_store,
        real_user_store=small_corpus.real_user_store,
    )
