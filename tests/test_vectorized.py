"""Tests for the vectorized corpus generation engine.

The engine's contract is byte-for-byte equality with the legacy
object-at-a-time generators for any seed, scale, worker count and
executor — plus columnar tables identical to extraction, a persistent
``.npz`` sidecar, deterministic sub-sharding and the min-records-per-worker
fan-out clamp.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.cache import CorpusCache, save_corpus, load_corpus
from repro.analysis.engine import (
    MIN_RECORDS_PER_WORKER,
    CorpusEngine,
    build_or_load_corpus,
)
from repro.bots.strategies import _pick, _pick_weighted
from repro.core.columnar import ColumnarTable, partition_rows_by_device
from repro.core.evaluation import evaluate_generalization
from repro.core.pipeline import FPInconsistentPipeline
from repro.geo.geolite import GeoDatabase
from repro.geo.ipaddr import IpAddressSpace
from repro.honeysite.site import HoneySite
from repro.users.privacy import PrivacyTechnology, PrivacyTrafficGenerator
from repro.users.realuser import RealUserTrafficGenerator

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    include_privacy=True,
    real_user_requests=120,
    privacy_requests_each=12,
)


def store_bytes(corpus) -> bytes:
    return "\n".join(
        json.dumps(record.to_dict(), sort_keys=True) for record in corpus.store
    ).encode()


@pytest.fixture(scope="module")
def legacy_corpus():
    return CorpusEngine(**TINY, generation="legacy").build(workers=1)


@pytest.fixture(scope="module")
def vectorized_corpus():
    return CorpusEngine(**TINY, generation="vectorized").build(workers=1)


# -- stream-identical cheap draws ------------------------------------------------


def test_pick_matches_generator_choice():
    pool = (8, 12, 16, 24, 32)
    for seed in range(10):
        a, b = np.random.default_rng(seed), np.random.default_rng(seed)
        assert [int(a.choice(pool)) for _ in range(50)] == [
            int(_pick(b, pool)) for _ in range(50)
        ]
        assert a.bit_generator.state["state"] == b.bit_generator.state["state"]


def test_pick_weighted_matches_generator_choice():
    names = ("a", "b", "c", "d")
    probabilities = np.array([0.4, 0.3, 0.2, 0.1])
    for seed in range(10):
        a, b = np.random.default_rng(seed), np.random.default_rng(seed)
        expected = [names[int(a.choice(len(names), p=probabilities))] for _ in range(50)]
        got = [_pick_weighted(b, names, probabilities) for _ in range(50)]
        assert expected == got
        assert a.bit_generator.state["state"] == b.bit_generator.state["state"]


# -- byte equality ----------------------------------------------------------------


def test_vectorized_matches_legacy_byte_for_byte(legacy_corpus, vectorized_corpus):
    assert store_bytes(vectorized_corpus) == store_bytes(legacy_corpus)


@pytest.mark.parametrize("seed", [7, 101])
def test_vectorized_matches_legacy_across_seeds(seed):
    config = {**TINY, "seed": seed, "include_privacy": False}
    legacy = CorpusEngine(**config, generation="legacy").build(workers=1)
    vectorized = CorpusEngine(**config, generation="vectorized").build(workers=1)
    assert store_bytes(vectorized) == store_bytes(legacy)


def test_vectorized_matches_legacy_with_subshards():
    config = {**TINY, "scale": 0.008, "include_privacy": False}
    legacy = CorpusEngine(**config, generation="legacy", subshard_target=300)
    vectorized = CorpusEngine(**config, generation="vectorized", subshard_target=300)
    left = legacy.build(workers=1)
    right = vectorized.build(workers=1)
    assert legacy.last_plan["subsharded_sources"]  # the split actually engaged
    assert store_bytes(left) == store_bytes(right)


@pytest.mark.parametrize("workers,executor", [(4, "process"), (3, "thread")])
def test_vectorized_worker_and_executor_invariance(vectorized_corpus, workers, executor):
    parallel = CorpusEngine(**TINY, generation="vectorized").build(
        workers=workers, executor=executor
    )
    assert store_bytes(parallel) == store_bytes(vectorized_corpus)


def test_vectorized_real_users_and_privacy_match_legacy():
    for seed in (3, 19):
        sites = [
            HoneySite(geo=GeoDatabase(IpAddressSpace()), rng=np.random.default_rng(seed))
            for _ in range(4)
        ]
        RealUserTrafficGenerator(sites[0], rng=seed).run(num_requests=150, num_users=40)
        RealUserTrafficGenerator(sites[1], rng=seed).run_vectorized(
            num_requests=150, num_users=40
        )
        PrivacyTrafficGenerator(sites[2], rng=seed).run_technology(
            PrivacyTechnology.BRAVE, num_requests=24
        )
        PrivacyTrafficGenerator(sites[3], rng=seed).run_technology_vectorized(
            PrivacyTechnology.BRAVE, num_requests=24
        )

        def dump(site):
            out = []
            for record in site.store:
                data = record.to_dict()
                data["request"].pop("request_id")
                out.append(json.dumps(data))
            return out

        assert dump(sites[0]) == dump(sites[1])
        assert dump(sites[2]) == dump(sites[3])


# -- columnar emission -----------------------------------------------------------


def assert_tables_equal(table: ColumnarTable, reference: ColumnarTable) -> None:
    assert table.attributes == reference.attributes
    for attribute in reference.attributes:
        assert np.array_equal(table.codes_of(attribute), reference.codes_of(attribute))
        left, right = table.values_of(attribute), reference.values_of(attribute)
        assert left == right
        assert [type(value) for value in left] == [type(value) for value in right]
    assert np.array_equal(table.request_ids, reference.request_ids)
    assert np.array_equal(table.timestamps, reference.timestamps)
    assert np.array_equal(table.cookie_codes, reference.cookie_codes)
    assert table.cookie_values == reference.cookie_values
    assert np.array_equal(table.ip_codes, reference.ip_codes)
    assert table.ip_values == reference.ip_values


def test_emitted_tables_identical_to_extraction(vectorized_corpus):
    expected = {"bots", "real_users"} | {
        f"privacy:{technology.value}" for technology in vectorized_corpus.privacy_requests
    }
    assert set(vectorized_corpus.columnar_tables) == expected
    assert_tables_equal(
        vectorized_corpus.columnar_tables["bots"],
        ColumnarTable.from_store(vectorized_corpus.bot_store),
    )
    assert_tables_equal(
        vectorized_corpus.columnar_tables["real_users"],
        ColumnarTable.from_store(vectorized_corpus.real_user_store),
    )
    for technology in vectorized_corpus.privacy_requests:
        assert_tables_equal(
            vectorized_corpus.columnar_tables[f"privacy:{technology.value}"],
            ColumnarTable.from_store(vectorized_corpus.privacy_store(technology)),
        )


def test_legacy_generation_emits_no_tables(legacy_corpus):
    assert legacy_corpus.columnar_tables == {}


# -- npz sidecar ------------------------------------------------------------------


def test_table_npz_roundtrip(tmp_path, vectorized_corpus):
    path = tmp_path / "bots.npz"
    table = vectorized_corpus.columnar_tables["bots"]
    table.save_npz(path)
    assert_tables_equal(ColumnarTable.load_npz(path), table)


def save_v2_layout(corpus, directory):
    """Write *corpus* in the legacy JSONL + sidecar archive layout.

    Temporarily swaps the (lazy) store for an object store so
    ``save_corpus`` takes the version-2 branch; the ``_load_sidecars``
    read-compat path keeps being exercised through archives produced here.
    """

    from repro.honeysite.storage import RequestStore

    site = corpus.site
    original = site.store
    site.store = RequestStore(list(original))
    try:
        save_corpus(corpus, directory)
    finally:
        site.store = original


def test_columnar_archive_roundtrip(tmp_path, vectorized_corpus):
    save_corpus(vectorized_corpus, tmp_path / "archive")
    assert (tmp_path / "archive" / "store_columnar.npz").is_file()
    assert not (tmp_path / "archive" / "store.jsonl.gz").exists()
    restored = load_corpus(tmp_path / "archive")
    assert set(restored.columnar_tables) == set(vectorized_corpus.columnar_tables)
    assert_tables_equal(
        restored.columnar_tables["bots"],
        ColumnarTable.from_store(restored.bot_store),
    )


def test_corrupt_columnar_archive_is_a_cache_miss(tmp_path, vectorized_corpus):
    from repro.honeysite.storage import StoreFormatError

    save_corpus(vectorized_corpus, tmp_path / "archive")
    (tmp_path / "archive" / "store_columnar.npz").write_bytes(b"definitely not npz")
    with pytest.raises(StoreFormatError):
        load_corpus(tmp_path / "archive")


def test_corrupt_sidecar_degrades_to_extraction(tmp_path, vectorized_corpus):
    # Version-2 layout: a broken sidecar drops only its subset.
    save_v2_layout(vectorized_corpus, tmp_path / "archive")
    (tmp_path / "archive" / "columnar_bots.npz").write_bytes(b"definitely not npz")
    restored = load_corpus(tmp_path / "archive")
    assert "bots" not in restored.columnar_tables
    assert "real_users" in restored.columnar_tables
    assert len(restored.store) == len(vectorized_corpus.store)


def test_missing_sidecar_is_not_an_error(tmp_path, vectorized_corpus):
    save_v2_layout(vectorized_corpus, tmp_path / "archive")
    (tmp_path / "archive" / "columnar_bots.npz").unlink()
    (tmp_path / "archive" / "columnar_real_users.npz").unlink()
    restored = load_corpus(tmp_path / "archive")
    assert restored.columnar_tables == {}
    assert store_bytes(restored) == store_bytes(vectorized_corpus)


def test_stale_sidecar_is_discarded(tmp_path, vectorized_corpus):
    save_v2_layout(vectorized_corpus, tmp_path / "archive")
    table = vectorized_corpus.columnar_tables["bots"]
    shifted = table.take(np.arange(table.n_rows, dtype=np.int64))
    shifted.request_ids = shifted.request_ids + 1000  # no longer matches the store
    shifted.save_npz(tmp_path / "archive" / "columnar_bots.npz")
    restored = load_corpus(tmp_path / "archive")
    assert "bots" not in restored.columnar_tables


def test_sidecar_from_same_config_different_seed_is_discarded(tmp_path, vectorized_corpus):
    # Request ids are renumbered 1..N and collide across same-configuration
    # corpora of different seeds; the timestamp stream does not.
    save_v2_layout(vectorized_corpus, tmp_path / "archive")
    table = vectorized_corpus.columnar_tables["bots"]
    foreign = table.take(np.arange(table.n_rows, dtype=np.int64))
    foreign.request_ids = table.request_ids  # identical id vector...
    foreign.timestamps = table.timestamps + 0.25  # ...but another corpus's clock
    foreign.save_npz(tmp_path / "archive" / "columnar_bots.npz")
    restored = load_corpus(tmp_path / "archive")
    assert "bots" not in restored.columnar_tables


def test_resaving_without_tables_removes_columnar_store(tmp_path, vectorized_corpus, legacy_corpus):
    save_corpus(vectorized_corpus, tmp_path / "archive")
    assert (tmp_path / "archive" / "store_columnar.npz").is_file()
    # A legacy-generation corpus has an object store and no tables; saving
    # it over the same directory must not leave the previous corpus's
    # columnar archive (or sidecars) behind.
    save_corpus(legacy_corpus, tmp_path / "archive")
    assert not (tmp_path / "archive" / "store_columnar.npz").exists()
    assert not (tmp_path / "archive" / "columnar_bots.npz").exists()
    assert (tmp_path / "archive" / "store.jsonl.gz").is_file()


def test_load_npz_rejects_negative_codes(tmp_path, vectorized_corpus):
    from repro.fingerprint.attributes import Attribute

    table = vectorized_corpus.columnar_tables["bots"]
    corrupt = table.take(np.arange(table.n_rows, dtype=np.int64))
    corrupt._codes[Attribute.PLATFORM] = corrupt._codes[Attribute.PLATFORM].copy()
    corrupt._codes[Attribute.PLATFORM][0] = -7
    corrupt.save_npz(tmp_path / "corrupt.npz")
    with pytest.raises(ValueError):
        ColumnarTable.load_npz(tmp_path / "corrupt.npz")


def test_accepts_table_rejects_mismatched_store(vectorized_corpus):
    from repro.core.detector import FPInconsistent

    detector = FPInconsistent()
    bots = vectorized_corpus.columnar_tables["bots"]
    assert detector.accepts_table(bots, vectorized_corpus.bot_store)
    assert not detector.accepts_table(bots, vectorized_corpus.real_user_store)
    # the pipeline falls back to extraction rather than classifying the
    # wrong rows
    result = FPInconsistentPipeline().run(vectorized_corpus.real_user_store, bot_table=bots)
    assert result.table_sources == {"bots": "extracted"}


def test_cache_hit_restores_embedded_tables(tmp_path):
    cache = CorpusCache(tmp_path)
    cold, cold_status = build_or_load_corpus(**TINY, workers=1, cache=cache)
    warm, warm_status = build_or_load_corpus(**TINY, workers=1, cache=cache)
    assert (cold_status, warm_status) == ("miss", "hit")
    assert set(warm.columnar_tables) == set(cold.columnar_tables)
    assert set(warm.columnar_tables) >= {"bots", "real_users"}
    for subset in cold.columnar_tables:
        assert_tables_equal(warm.columnar_tables[subset], cold.columnar_tables[subset])


# -- sub-sharding + fan-out planning ----------------------------------------------


def test_subshard_budgets_are_deterministic_and_cover_volume():
    from repro.analysis.engine import MAX_TOTAL_SHARDS

    engine = CorpusEngine(**TINY, subshard_target=100)
    specs = engine.plan()
    assert len(specs) <= MAX_TOTAL_SHARDS
    budgets: dict = {}
    for spec in specs:
        if spec.kind != "bots":
            continue
        budgets.setdefault(spec.source, []).append(spec.request_budget)
    split_sources = 0
    for profile in engine.profiles:
        volume = profile.scaled_requests(engine.scale)
        parts = budgets[profile.name]
        if volume <= 100:
            # below the target a service is never split
            assert parts == [None]
        elif len(parts) > 1:
            # a split service's budgets are balanced and cover its volume
            split_sources += 1
            assert sum(parts) == volume
            assert max(parts) - min(parts) <= 1
    assert split_sources > 0  # the shard ceiling still leaves room to split
    # the plan is a pure function of the configuration, not the fan-out
    again = CorpusEngine(**TINY, subshard_target=100).plan()
    assert [(s.source, s.request_budget, s.seed.spawn_key) for s in specs] == [
        (s.source, s.request_budget, s.seed.spawn_key) for s in again
    ]


def test_unsplit_plan_keeps_source_seeds():
    # Services below the split threshold must keep the exact per-source
    # seeds earlier revisions used, so unsplit corpora stay unchanged.
    split = {s.source: s for s in CorpusEngine(**TINY, subshard_target=10 ** 9).plan()}
    for spec in split.values():
        assert spec.request_budget is None
    reference = {s.source: s for s in CorpusEngine(**TINY).plan()}
    for source, spec in split.items():
        assert spec.seed.spawn_key == reference[source].seed.spawn_key


def test_effective_workers_clamps_low_scales():
    engine = CorpusEngine(**TINY)
    specs = engine.plan()
    planned = sum(
        spec.request_budget
        if spec.request_budget is not None
        else spec.profile.scaled_requests(engine.scale)
        if spec.kind == "bots"
        else spec.num_requests
        for spec in specs
    )
    assert planned < MIN_RECORDS_PER_WORKER  # tiny corpus: one worker of work
    assert engine.effective_workers(8, specs) == 1
    engine.build(workers=8)
    assert engine.last_plan["requested_workers"] == 8
    assert engine.last_plan["effective_workers"] == 1


def test_effective_workers_scales_with_volume():
    engine = CorpusEngine(**TINY)
    specs = engine.plan()
    big = [spec for spec in specs for _ in range(4)]  # pretend 4x the shards
    assert engine.effective_workers(2, big) <= 2
    assert engine.effective_workers(1, specs) == 1


# -- code-column partitioner ------------------------------------------------------


def reference_partition(table: ColumnarTable, shards: int):
    """The PR-2 tuple-and-string partitioner, kept as the test oracle."""

    if shards == 1 or table.n_rows == 0:
        return [np.arange(table.n_rows, dtype=np.int64)]
    parent: dict = {}

    def find(node):
        root = node
        while parent[root] is not root:
            root = parent[root]
        while parent[node] is not root:
            parent[node], node = root, parent[node]
        return root

    row_nodes = []
    for row in range(table.n_rows):
        cookie, ip = table.cookie_at(row), table.ip_at(row)
        nodes = []
        if cookie:
            nodes.append(("cookie", cookie))
        if ip:
            nodes.append(("ip", ip))
        if not nodes:
            nodes.append(("row", row))
        for node in nodes:
            parent.setdefault(node, node)
        if len(nodes) == 2:
            left, right = find(nodes[0]), find(nodes[1])
            if left is not right:
                parent[right] = left
        row_nodes.append(nodes[0])
    components: dict = {}
    for row, node in enumerate(row_nodes):
        components.setdefault(find(node), []).append(row)
    ordered = sorted(components.values(), key=lambda rows: (-len(rows), rows[0]))
    buckets = [[] for _ in range(min(shards, max(1, len(ordered))))]
    loads = [0] * len(buckets)
    for rows in ordered:
        target = loads.index(min(loads))
        buckets[target].extend(rows)
        loads[target] += len(rows)
    return [np.array(sorted(bucket), dtype=np.int64) for bucket in buckets if bucket]


@pytest.mark.parametrize("shards", [2, 3, 5, 11])
def test_partitioner_matches_reference(vectorized_corpus, shards):
    table = vectorized_corpus.store.columnar()
    result = partition_rows_by_device(table, shards)
    expected = reference_partition(table, shards)
    assert len(result) == len(expected)
    for left, right in zip(result, expected):
        assert np.array_equal(left, right)
    merged = np.sort(np.concatenate(result))
    assert np.array_equal(merged, np.arange(table.n_rows, dtype=np.int64))


def test_partitioner_handles_missing_keys():
    # Rows with no cookie and no address become singleton components.
    base = ColumnarTable.from_fingerprints([])
    base.cookie_codes = np.array([0, -1, 0, 1], dtype=np.int32)
    base.cookie_values = ["c1", "c2"]
    base.ip_codes = np.array([-1, -1, 0, 0], dtype=np.int32)
    base.ip_values = ["10.0.0.1"]
    base._n_rows = 4
    base.request_ids = np.arange(4, dtype=np.int64)
    base.timestamps = np.zeros(4)
    result = partition_rows_by_device(base, 4)
    expected = reference_partition(base, 4)
    assert [list(rows) for rows in result] == [list(rows) for rows in expected]


# -- generalisation over take() ---------------------------------------------------


def test_generalization_take_split_matches_legacy(vectorized_corpus):
    columnar = evaluate_generalization(vectorized_corpus.bot_store, seed=5, engine="columnar")
    legacy = evaluate_generalization(vectorized_corpus.bot_store, seed=5, engine="legacy")
    for name in columnar:
        assert columnar[name].train_detection_rate == legacy[name].train_detection_rate
        assert columnar[name].test_detection_rate == legacy[name].test_detection_rate


def test_pipeline_reuses_emitted_tables(vectorized_corpus):
    pipeline = FPInconsistentPipeline()
    reused = pipeline.run(
        vectorized_corpus.bot_store,
        real_user_store=vectorized_corpus.real_user_store,
        bot_table=vectorized_corpus.columnar_tables["bots"],
        real_user_table=vectorized_corpus.columnar_tables["real_users"],
    )
    fresh = pipeline.run(
        vectorized_corpus.bot_store,
        real_user_store=vectorized_corpus.real_user_store,
    )
    assert reused.table_sources == {"bots": "reused", "real_users": "reused"}
    assert fresh.table_sources == {"bots": "extracted", "real_users": "extracted"}
    assert [rule.to_dict() for rule in reused.filter_list] == [
        rule.to_dict() for rule in fresh.filter_list
    ]
    assert reused.real_user_tnr == fresh.real_user_tnr
    assert sorted(reused.verdicts) == sorted(fresh.verdicts)
    for request_id, verdict in reused.verdicts.items():
        other = fresh.verdicts[request_id]
        assert verdict.spatial_rule == other.spatial_rule
        assert verdict.temporal_flags == other.temporal_flags


def test_incompatible_table_falls_back_to_extraction(vectorized_corpus):
    from repro.fingerprint.attributes import Attribute

    crippled = vectorized_corpus.columnar_tables["bots"].select([Attribute.PLATFORM])
    pipeline = FPInconsistentPipeline()
    result = pipeline.run(vectorized_corpus.bot_store, bot_table=crippled)
    assert result.table_sources == {"bots": "extracted"}
