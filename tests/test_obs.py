"""Tests for the unified telemetry layer (:mod:`repro.obs`).

Covers the registry and histogram semantics, span nesting, the shard-span
merge across both executor kinds, exporter formats, the CLI exporter
flags, the back-compat accessors that now read through the registry, and
the load-bearing invariant of the whole layer: enabling telemetry never
changes a single output byte.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.analysis.engine import CorpusEngine
from repro.cli import main as cli_main
from repro.core.detector import FPInconsistent
from repro.honeysite.storage import materialized_record_count
from repro.serve.gateway import GatewayHealth
from repro.stream import ReplayDriver, verdicts_digest

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    real_user_requests=120,
)


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Restore the telemetry switch and drain the tracer after each test.

    Always-on counters are left alone — they are cumulative by design
    and every consumer reads deltas — but the enabled/disabled state and
    the span buffer must not leak between tests (or into the rest of the
    suite, which assumes untraced runs).
    """

    before = os.environ.get(obs.TELEMETRY_ENV_VAR)
    yield
    obs.set_telemetry(None)
    if before is None:
        os.environ.pop(obs.TELEMETRY_ENV_VAR, None)
    else:
        os.environ[obs.TELEMETRY_ENV_VAR] = before
    obs.tracer().reset()


# -- registry semantics -------------------------------------------------------


def test_counter_labels_totals_and_monotonicity():
    obs.set_telemetry(True)
    c = obs.counter("test_obs_counter_total", "help text")
    c.reset()
    c.inc()
    c.inc(2, status="hit")
    c.inc(3, status="miss")
    c.inc(status="hit")
    assert c.value() == 1
    assert c.value(status="hit") == 3
    assert c.value(status="miss") == 3
    assert c.total() == 7
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gated_counter_is_a_noop_when_disabled():
    obs.set_telemetry(False)
    c = obs.counter("test_obs_gated_total")
    c.reset()
    c.inc(5)
    assert c.value() == 0
    obs.set_telemetry(True)
    c.inc(5)
    assert c.value() == 5


def test_always_counter_records_while_disabled():
    obs.set_telemetry(False)
    c = obs.counter("test_obs_always_total", always=True)
    c.reset()
    c.inc(2)
    assert c.value() == 2


def test_gauge_set_add_last_write_wins():
    obs.set_telemetry(True)
    g = obs.gauge("test_obs_gauge")
    g.reset()
    g.set(10)
    g.set(4)
    g.add(1.5)
    assert g.value() == 5.5


def test_histogram_buckets_sum_count_and_inf_slot():
    obs.set_telemetry(True)
    h = obs.histogram("test_obs_seconds", buckets=(0.1, 1.0))
    h.reset()
    for value in (0.05, 0.5, 0.5, 2.0):
        h.observe(value, stage="total")
    snap = h.snapshot(stage="total")
    # Non-cumulative internal counts: [<=0.1, <=1.0, +Inf].
    assert snap["counts"] == [1, 2, 1]
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(3.05)
    # A boundary value lands in the bucket whose bound it equals.
    h.observe(0.1, stage="total")
    assert h.snapshot(stage="total")["counts"][0] == 2


def test_registry_interns_by_name_and_rejects_type_mismatch():
    first = obs.counter("test_obs_interned_total", "first help")
    second = obs.counter("test_obs_interned_total", "ignored rebinding help")
    assert first is second
    assert second.help == "first help"
    with pytest.raises(ValueError):
        obs.gauge("test_obs_interned_total")
    # Re-registration with always=True upgrades the existing instrument.
    assert not first.always
    obs.counter("test_obs_interned_total", always=True)
    assert first.always


def test_registry_snapshot_reset_and_metric_value():
    obs.set_telemetry(True)
    c = obs.counter("test_obs_snapshot_total", "snapshot help")
    c.reset()
    c.inc(4, kind="a")
    snapshot = obs.registry().snapshot()
    entry = snapshot["test_obs_snapshot_total"]
    assert entry["type"] == "counter"
    assert entry["series"] == [{"labels": {"kind": "a"}, "value": 4.0}]
    assert obs.metric_value("test_obs_snapshot_total", kind="a") == 4
    assert obs.metric_value("test_obs_never_registered") == 0.0
    c.reset()
    assert c.series() == []
    # Empty series are dropped from snapshots entirely.
    assert "test_obs_snapshot_total" not in obs.registry().snapshot()


# -- spans --------------------------------------------------------------------


def test_span_nesting_depth_and_parent():
    obs.set_telemetry(True)
    trc = obs.tracer()
    trc.reset()
    with trc.span("outer.work", rows=3):
        with trc.span("inner.step") as inner:
            inner.set(result="ok")
    records = {record.name: record for record in trc.records()}
    assert records["outer.work"].depth == 0
    assert records["outer.work"].parent is None
    assert records["outer.work"].attrs == {"rows": 3}
    assert records["inner.step"].depth == 1
    assert records["inner.step"].parent == "outer.work"
    assert records["inner.step"].attrs == {"result": "ok"}
    assert records["inner.step"].duration <= records["outer.work"].duration


def test_span_measures_duration_even_while_disabled():
    obs.set_telemetry(False)
    trc = obs.tracer()
    trc.reset()
    with trc.span("quiet.work") as span:
        pass
    assert span.duration >= 0.0
    assert trc.records() == []
    trc.record("quiet.loop", ts=1.0, duration=0.5)
    assert trc.records() == []


def test_span_records_error_attribute_on_exception():
    obs.set_telemetry(True)
    trc = obs.tracer()
    trc.reset()
    with pytest.raises(RuntimeError):
        with trc.span("failing.work"):
            raise RuntimeError("boom")
    (record,) = trc.records()
    assert record.attrs["error"] == "RuntimeError"


def test_tracer_adopt_merges_foreign_records():
    obs.set_telemetry(True)
    trc = obs.tracer()
    trc.reset()
    foreign = obs.SpanRecord(
        name="corpus.shard", ts=12.0, duration=0.25, pid=99999, tid=1
    )
    trc.adopt([foreign])
    assert trc.records() == [foreign]


# -- exporters ----------------------------------------------------------------


def test_prometheus_text_format():
    obs.set_telemetry(True)
    c = obs.counter("test_obs_prom_total", "a counter")
    c.reset()
    c.inc(3, status='he said "hi"\n')
    h = obs.histogram("test_obs_prom_seconds", "a histogram", buckets=(0.1, 1.0))
    h.reset()
    for value in (0.05, 0.5, 2.0):
        h.observe(value)
    text = obs.prometheus_text()
    assert "# HELP test_obs_prom_total a counter" in text
    assert "# TYPE test_obs_prom_total counter" in text
    assert 'test_obs_prom_total{status="he said \\"hi\\"\\n"} 3' in text
    # Cumulative buckets with the implicit +Inf, plus _sum and _count.
    assert 'test_obs_prom_seconds_bucket{le="0.1"} 1' in text
    assert 'test_obs_prom_seconds_bucket{le="1.0"} 2' in text
    assert 'test_obs_prom_seconds_bucket{le="+Inf"} 3' in text
    assert "test_obs_prom_seconds_count 3" in text
    assert "test_obs_prom_seconds_sum 2.55" in text


def test_chrome_trace_format():
    obs.set_telemetry(True)
    trc = obs.tracer()
    trc.reset()
    with trc.span("corpus.generate", shards=2):
        pass
    trc.adopt(
        [obs.SpanRecord(name="corpus.shard", ts=0.0, duration=0.5, pid=424242, tid=7)]
    )
    document = obs.chrome_trace()
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {meta["args"]["name"] for meta in metas} == {
        "repro",
        "shard-worker 424242",
    }
    by_name = {span["name"]: span for span in spans}
    assert by_name["corpus.generate"]["cat"] == "corpus"
    assert by_name["corpus.generate"]["args"] == {"shards": 2}
    # Timestamps are rebased to the earliest span, in microseconds.
    assert min(span["ts"] for span in spans) == 0.0
    assert by_name["corpus.shard"]["dur"] == pytest.approx(0.5e6)
    json.dumps(document)  # must be JSON-clean


# -- shard span merge across executors ---------------------------------------


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_shard_spans_merge_back_from_workers(executor):
    # enable_telemetry() (not set_telemetry) so process workers inherit
    # the switch through the environment, as the CLI does.
    obs.enable_telemetry()
    trc = obs.tracer()
    trc.reset()
    engine = CorpusEngine(**TINY, min_records_per_worker=500)
    engine.build(workers=2, executor=executor)
    assert engine.last_plan["effective_workers"] == 2
    records = trc.records()
    shard_spans = [r for r in records if r.name == "corpus.shard"]
    assert len(shard_spans) == engine.last_plan["shards"]
    assert {r.attrs["source"] for r in shard_spans} >= {"real_users"}
    if executor == "process":
        assert {r.pid for r in shard_spans} - {os.getpid()}, (
            "process-pool shard spans must carry the worker pids"
        )
    else:
        assert {r.pid for r in shard_spans} == {os.getpid()}
    names = {r.name for r in records}
    assert {"corpus.generate", "corpus.merge"} <= names


# -- byte identity ------------------------------------------------------------


def _store_bytes(corpus) -> bytes:
    return "\n".join(
        json.dumps(record.to_dict(), sort_keys=True) for record in corpus.store
    ).encode()


def test_corpus_build_is_byte_identical_with_telemetry_on():
    engine = CorpusEngine(**TINY)
    baseline = engine.build(workers=2, executor="thread")
    obs.set_telemetry(True)
    traced = engine.build(workers=2, executor="thread")
    assert _store_bytes(baseline) == _store_bytes(traced)


def test_stream_replay_is_byte_identical_with_telemetry_on(small_corpus):
    bot_store = small_corpus.bot_store
    detector = FPInconsistent()
    table, _source = detector.resolve_table(
        bot_store, small_corpus.columnar_tables.get("bots")
    )
    detector.fit_table(table)

    obs.set_telemetry(False)
    baseline = ReplayDriver(detector, batch_size=512).replay(bot_store)
    obs.set_telemetry(True)
    traced = ReplayDriver(detector, batch_size=512).replay(bot_store)
    assert verdicts_digest(baseline.verdicts) == verdicts_digest(traced.verdicts)
    # ...and the telemetry side actually recorded the replay.
    hist = obs.registry().get("repro_stream_batch_seconds")
    assert hist.snapshot(stage="total")["count"] >= traced.batches
    assert any(r.name == "stream.batch" for r in obs.tracer().records())


# -- back-compat accessors ----------------------------------------------------


def test_materialized_record_count_reads_the_registry():
    engine = CorpusEngine(seed=31, scale=0.002, include_real_users=False)
    corpus = engine.build(workers=1)
    before = materialized_record_count()
    corpus.store.records  # force materialisation of the lazy store
    delta = materialized_record_count() - before
    assert delta == len(corpus.store)
    assert delta == obs.metric_value("repro_records_materialized_total") - before


def test_gateway_health_writes_through_to_registry():
    health = GatewayHealth()
    failures = obs.registry().get("repro_serve_worker_failures_total")
    rebuilds = obs.registry().get("repro_serve_worker_rebuilds_total")
    dead = obs.registry().get("repro_serve_dead_letters_total")
    before = (
        failures.total(),
        rebuilds.value(),
        dead.value(),
    )
    health.record_worker_failure(1, RuntimeError("boom"))
    health.record_worker_rebuild()
    health.record_dead_letter(batch=3, worker=1, rows=[7, 8])
    assert failures.total() == before[0] + 1
    assert rebuilds.value() == before[1] + 1
    assert dead.value() == before[2] + 1
    # Restoring a checkpointed health report must not re-count.
    restored = GatewayHealth.from_dict(health.to_dict())
    assert restored.to_dict() == health.to_dict()
    assert failures.total() == before[0] + 1
    assert rebuilds.value() == before[1] + 1


def test_shard_fault_stats_mirror_into_registry():
    runs = obs.registry().get("repro_shard_runs_total")
    obs.set_telemetry(True)
    before = runs.value(pool="corpus")
    engine = CorpusEngine(seed=31, scale=0.002, include_real_users=False)
    engine.build(workers=1)
    assert runs.value(pool="corpus") > before


# -- CLI exporter flags -------------------------------------------------------


def test_cli_stream_trace_and_metrics_exporters(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.prom"
    json_path = tmp_path / "stream.json"
    argv = [
        "stream",
        "--seed", "5",
        "--scale", "0.002",
        "--no-real-users",
        "--no-cache",
        "--batch-size", "256",
    ]
    code = cli_main(argv + ["--json", str(tmp_path / "plain.json")])
    assert code == 0
    code = cli_main(
        argv
        + [
            "--json", str(json_path),
            "--trace", str(trace_path),
            "--metrics-out", str(metrics_path),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "batch latency p50=" in captured.err

    trace = json.loads(trace_path.read_text())
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert {"corpus.shard", "stream.mine_filter_list", "stream.batch"} <= names

    prom = metrics_path.read_text()
    assert "# TYPE repro_stream_batch_seconds histogram" in prom
    assert 'repro_stream_batch_seconds_bucket{le="+Inf",stage="total"}' in prom

    document = json.loads(json_path.read_text())
    assert "p95_batch_ms" in document
    assert "repro_stream_batch_seconds" in document["telemetry"]
    # Tracing must not change a single verdict byte.
    plain = json.loads((tmp_path / "plain.json").read_text())
    assert "telemetry" not in plain
    assert document["verdicts_digest"] == plain["verdicts_digest"]
