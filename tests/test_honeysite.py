"""Unit tests for the honey-site architecture and request store."""

import numpy as np
import pytest

from repro.bots.strategies import base_bot_fingerprint
from repro.fingerprint.attributes import Attribute
from repro.honeysite.collector import CollectionError, FingerprintCollector
from repro.honeysite.site import HoneySite
from repro.honeysite.storage import RequestStore, SECONDS_PER_DAY
from repro.honeysite.urls import UrlRegistry, generate_url_token
from repro.network.request import WebRequest


@pytest.fixture
def site():
    return HoneySite(rng=np.random.default_rng(42))


def _request(site, path, rng, *, cookie=None, timestamp=0.0, country="United States of America", datacenter=True):
    fingerprint = base_bot_fingerprint(rng)
    ip_address = site.geo.allocate_address(rng, country=country, datacenter=datacenter)
    return WebRequest(
        url_path=path, timestamp=timestamp, ip_address=ip_address, fingerprint=fingerprint, cookie=cookie
    )


# -- URL registry ------------------------------------------------------------------


def test_url_tokens_are_random_strings(rng):
    token = generate_url_token(rng)
    assert len(token) == 10 and token.isalnum()
    with pytest.raises(ValueError):
        generate_url_token(rng, length=2)


def test_url_registry_round_trip(rng):
    registry = UrlRegistry(rng)
    path = registry.register("S1")
    assert registry.source_of(path) == "S1"
    assert registry.path_of("S1") == path
    assert registry.register("S1") == path
    assert registry.source_of("/unknown") is None
    assert set(registry.sources()) == {"S1"}


def test_url_registry_distinct_paths(rng):
    registry = UrlRegistry(rng)
    paths = {registry.register(f"S{i}") for i in range(30)}
    assert len(paths) == 30


# -- collector -----------------------------------------------------------------------


def test_collector_accepts_fingerprint_and_mapping(rng):
    collector = FingerprintCollector()
    fingerprint = base_bot_fingerprint(rng)
    collected = collector.collect(fingerprint)
    assert collected.complete
    assert collected.visitor_id == fingerprint.stable_hash()
    from_mapping = collector.collect({"platform": "Win32"})
    assert not from_mapping.complete
    assert Attribute.USER_AGENT in from_mapping.missing_attributes


def test_collector_strict_mode(rng):
    collector = FingerprintCollector(strict=True)
    with pytest.raises(CollectionError):
        collector.collect({"platform": "Win32"})
    with pytest.raises(CollectionError):
        collector.collect(42)


# -- honey site ------------------------------------------------------------------------


def test_site_drops_unknown_paths(site, rng):
    request = _request(site, "/unknownpath", rng)
    assert site.handle(request) is None
    assert site.dropped_requests == 1
    assert len(site.store) == 0


def test_site_records_and_attributes_known_paths(site, rng):
    path = site.register_source("S1")
    record = site.handle(_request(site, path, rng))
    assert record is not None
    assert record.source == "S1"
    assert len(site.store) == 1


def test_site_issues_cookie_when_missing(site, rng):
    path = site.register_source("S1")
    record = site.handle(_request(site, path, rng, cookie=None))
    assert record.cookie
    echoed = site.handle(_request(site, path, rng, cookie=record.cookie))
    assert echoed.cookie == record.cookie


def test_site_enriches_fingerprint_with_geo(site, rng):
    path = site.register_source("S1")
    record = site.handle(_request(site, path, rng, country="France", datacenter=False))
    assert record.attribute(Attribute.IP_COUNTRY) == "France"
    assert record.attribute(Attribute.ASN) is not None


def test_site_runs_both_detectors(site, rng):
    path = site.register_source("S1")
    record = site.handle(_request(site, path, rng))
    assert record.datadome.detector == "DataDome"
    assert record.botd.detector == "BotD"
    # The bare headless template from datacenter space is caught by both.
    assert record.datadome.is_bot and record.botd.is_bot


# -- request store ----------------------------------------------------------------------


def _populated_store(site, rng, count=40):
    path_a = site.register_source("S1")
    path_b = site.register_source("S2")
    for index in range(count):
        path = path_a if index % 2 == 0 else path_b
        site.handle(
            _request(site, path, rng, timestamp=index * SECONDS_PER_DAY / 4, datacenter=index % 3 != 0)
        )
    return site.store


def test_store_filters_and_rates(site, rng):
    store = _populated_store(site, rng)
    assert len(store.by_source("S1")) + len(store.by_source("S2")) == len(store)
    assert store.sources()[0] in ("S1", "S2")
    assert 0.0 <= store.evasion_rate("DataDome") <= 1.0
    assert store.detection_rate("BotD") == pytest.approx(1.0 - store.evasion_rate("BotD"))
    evading = store.evading("DataDome")
    detected = store.detected_by("DataDome")
    assert len(evading) + len(detected) == len(store)


def test_store_unique_counts_and_grouping(site, rng):
    store = _populated_store(site, rng)
    assert store.unique_ips() <= len(store)
    assert store.unique_cookies() == len(store)  # no client retained a cookie
    assert store.unique_fingerprints() <= len(store)
    histogram = store.unique_values(Attribute.PLATFORM)
    assert sum(histogram.values()) == len(store)
    assert set(store.group_by_cookie()) == {record.cookie for record in store}
    assert set(store.group_by_ip()) == {record.request.ip_address for record in store}


def test_store_daily_series(site, rng):
    store = _populated_store(site, rng)
    series = store.daily_series()
    assert sum(day["requests"] for day in series.values()) == len(store)
    for day_stats in series.values():
        assert day_stats["unique_ips"] <= day_stats["requests"]


def test_store_sorted_and_split(site, rng):
    store = _populated_store(site, rng)
    ordered = store.sorted_by_time()
    timestamps = [record.timestamp for record in ordered]
    assert timestamps == sorted(timestamps)
    train, test = store.split(0.75, np.random.default_rng(0))
    assert len(train) + len(test) == len(store)
    assert abs(len(train) - 0.75 * len(store)) <= 1
    with pytest.raises(ValueError):
        store.split(1.5, np.random.default_rng(0))


def test_store_jsonl_round_trip(site, rng, tmp_path):
    store = _populated_store(site, rng, count=10)
    path = tmp_path / "requests.jsonl"
    store.save_jsonl(path)
    loaded = RequestStore.load_jsonl(path)
    assert len(loaded) == len(store)
    assert loaded[0].source == store[0].source
    assert loaded[0].datadome.is_bot == store[0].datadome.is_bot
    assert loaded[0].request.fingerprint == store[0].request.fingerprint


def test_record_decision_accessors(site, rng):
    store = _populated_store(site, rng, count=4)
    record = store[0]
    assert record.decision_for("DataDome") is record.datadome
    assert record.decision_for("BotD") is record.botd
    with pytest.raises(KeyError):
        record.decision_for("F5")
    assert record.day == int(record.timestamp // SECONDS_PER_DAY)
