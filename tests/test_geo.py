"""Unit tests for the geo substrate (ASNs, IP space, lookups, timezones)."""

import pytest

from repro.geo.asn import (
    ASN_REGISTRY,
    AsnBlocklist,
    AsnKind,
    BLOCKED_ASNS,
    IpBlocklist,
    TOR_EXIT_ASNS,
    datacenter_asns,
    is_datacenter_asn,
    residential_asns,
)
from repro.geo.geolite import build_ip_blocklist
from repro.geo.ipaddr import IpAddressSpace, format_ipv4, parse_ipv4, regions_of_country
from repro.geo.timezones import (
    ADVERTISED_REGIONS,
    country_matches_region,
    country_of_timezone,
    offset_matches_region,
    offsets_of_country,
    offsets_of_region,
    offsets_overlap,
    timezone_matches_region,
    utc_offsets_of,
)


# -- ASN registry -----------------------------------------------------------


def test_blocked_asns_are_exactly_datacenter_asns():
    for number in BLOCKED_ASNS:
        assert ASN_REGISTRY[number].is_datacenter
    for number, record in ASN_REGISTRY.items():
        if record.is_datacenter:
            assert number in BLOCKED_ASNS


def test_is_datacenter_asn():
    assert is_datacenter_asn(16509)      # AWS
    assert not is_datacenter_asn(7922)   # Comcast
    assert not is_datacenter_asn(999999)  # unknown


def test_residential_and_datacenter_filters():
    assert 7922 in residential_asns("United States of America")
    assert 16509 in datacenter_asns("United States of America")
    assert 16509 not in residential_asns()


def test_tor_exit_asns_registered_as_hosting():
    for asn in TOR_EXIT_ASNS:
        assert ASN_REGISTRY[asn].kind is AsnKind.HOSTING_PROVIDER


def test_asn_blocklist_membership():
    blocklist = AsnBlocklist()
    assert blocklist.is_blocked(16509)
    assert not blocklist.is_blocked(7922)
    assert not blocklist.is_blocked(None)
    assert 16509 in blocklist


def test_ip_blocklist_coverage():
    blocklist = IpBlocklist(["1.2.3.4"])
    blocklist.add("5.6.7.8")
    assert blocklist.is_blocked("1.2.3.4")
    assert not blocklist.is_blocked("9.9.9.9")
    assert blocklist.coverage(["1.2.3.4", "9.9.9.9"]) == pytest.approx(0.5)
    assert IpBlocklist().coverage([]) == 0.0


# -- IPv4 helpers -----------------------------------------------------------


def test_ipv4_format_parse_round_trip():
    assert parse_ipv4(format_ipv4(100, 2, 3, 4)) == (100, 2, 3, 4)


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "1.2.3.999", "a.b.c.d"])
def test_ipv4_parse_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_ipv4(bad)


def test_regions_of_country():
    regions = regions_of_country("France")
    assert any(region.region == "Hauts-de-France" for region in regions)
    assert regions_of_country("Atlantis") == ()


# -- address space ------------------------------------------------------------


def test_address_space_assigns_disjoint_prefixes(rng):
    space = IpAddressSpace()
    regions = regions_of_country("United States of America")
    first = space.assignment_for(7922, regions[0])
    second = space.assignment_for(16509, regions[0])
    assert (first.first_octet, first.second_octet) != (second.first_octet, second.second_octet)
    # Residential and cloud ASNs live in different first octets.
    assert first.first_octet != second.first_octet


def test_address_space_allocation_within_prefix(rng):
    space = IpAddressSpace()
    region = regions_of_country("Germany")[0]
    address = space.allocate(24940, region, rng)
    assignment = space.lookup_prefix(address)
    assert assignment is not None
    assert assignment.asn == 24940
    assert assignment.region.country == "Germany"


def test_address_space_reuses_assignment(rng):
    space = IpAddressSpace()
    region = regions_of_country("France")[0]
    assert space.assignment_for(3215, region) is space.assignment_for(3215, region)


def test_address_space_unknown_asn(rng):
    space = IpAddressSpace()
    region = regions_of_country("France")[0]
    with pytest.raises(KeyError):
        space.assignment_for(424242, region)


# -- GeoDatabase ------------------------------------------------------------------


def test_geo_database_residential_lookup(geo, rng):
    address = geo.allocate_address(rng, country="France", datacenter=False)
    record = geo.lookup(address)
    assert record is not None
    assert record.country == "France"
    assert not record.is_datacenter
    assert record.timezone == "Europe/Paris"
    assert "/" in record.location_label


def test_geo_database_datacenter_lookup(geo, rng):
    address = geo.allocate_address(rng, country="United States of America", datacenter=True)
    record = geo.lookup(address)
    assert record is not None
    assert record.is_datacenter
    assert record.asn in BLOCKED_ASNS


def test_geo_database_datacenter_excludes_tor_exits(geo, rng):
    for _ in range(60):
        address = geo.allocate_address(rng, country="United States of America", datacenter=True)
        assert geo.asn_of(address) not in TOR_EXIT_ASNS


def test_geo_database_unknown_address(geo):
    assert geo.lookup("203.0.113.7") is None
    assert geo.country_of("203.0.113.7") is None


def test_geo_database_region_pinning(geo, rng):
    address = geo.allocate_address(
        rng, country="United States of America", datacenter=False, region_name="California"
    )
    assert geo.lookup(address).region == "California"


def test_geo_timezone_consistency_check(geo, rng):
    address = geo.allocate_address(rng, country="France", datacenter=False)
    assert geo.is_consistent_with_timezone(address, "Europe/Paris") is True
    assert geo.is_consistent_with_timezone(address, "America/Los_Angeles") is False
    assert geo.is_consistent_with_timezone(address, "Mars/Olympus") is None


def test_build_ip_blocklist_coverage(geo, rng):
    addresses = [
        geo.allocate_address(rng, country="United States of America", datacenter=True)
        for _ in range(200)
    ]
    blocklist = build_ip_blocklist(addresses, rng, coverage=0.25)
    observed = blocklist.coverage(set(addresses))
    assert 0.15 < observed < 0.35


def test_build_ip_blocklist_rejects_bad_coverage(rng):
    with pytest.raises(ValueError):
        build_ip_blocklist(["1.1.1.1"], rng, coverage=1.5)


# -- timezones ----------------------------------------------------------------------


def test_utc_offsets_of_known_zone():
    assert -480 in utc_offsets_of("America/Los_Angeles")
    assert utc_offsets_of("Asia/Shanghai") == (480,)


def test_country_of_timezone():
    assert country_of_timezone("Europe/Paris") == "France"
    assert country_of_timezone("Nowhere/Zone") is None


def test_offsets_of_region_and_country():
    assert 60 in offsets_of_region("France")
    assert offsets_of_country("France") == frozenset({60, 120})
    with pytest.raises(KeyError):
        offsets_of_region("Narnia")


def test_offset_matches_region_conservative_rule():
    # Europe/Berlin offsets overlap France (the paper's own example).
    assert timezone_matches_region("Europe/Berlin", "France")
    assert not timezone_matches_region("America/Los_Angeles", "France")
    assert offset_matches_region(60, "Europe")
    assert not offset_matches_region(-480, "Europe")


def test_country_matches_region():
    assert country_matches_region("Germany", "France")  # same UTC offsets
    assert not country_matches_region("China", "France")


def test_offsets_overlap():
    assert offsets_overlap("Europe/Paris", "Europe/Berlin")
    assert not offsets_overlap("Europe/Paris", "Asia/Shanghai")


def test_advertised_regions_cover_study_targets():
    for region in ("United States", "Canada", "Europe", "France"):
        assert region in ADVERTISED_REGIONS
