"""Unit tests for real-user and privacy-technology traffic generators."""

import numpy as np
import pytest

from repro.fingerprint.attributes import Attribute
from repro.honeysite.site import HoneySite
from repro.users.privacy import (
    PrivacyTechnology,
    PrivacyTrafficGenerator,
    apply_brave,
    apply_fingerprint_spoofer,
    apply_tor,
)
from repro.users.realuser import REAL_USER_SOURCE, RealUserTrafficGenerator


@pytest.fixture
def site():
    return HoneySite(rng=np.random.default_rng(5))


def test_real_user_traffic_recorded_and_undetected(site):
    generator = RealUserTrafficGenerator(site, rng=np.random.default_rng(1), ua_spoofer_rate=0.0)
    recorded = generator.run(num_requests=200, num_users=40)
    store = site.store.by_source(REAL_USER_SOURCE)
    assert recorded == 200 and len(store) == 200
    # Real, consistent devices from residential space are never flagged.
    assert store.detection_rate("DataDome") == 0.0
    assert store.detection_rate("BotD") == 0.0


def test_real_user_cookies_are_retained(site):
    generator = RealUserTrafficGenerator(site, rng=np.random.default_rng(1), ua_spoofer_rate=0.0)
    generator.run(num_requests=300, num_users=30)
    store = site.store.by_source(REAL_USER_SOURCE)
    assert store.unique_cookies() <= 30


def test_real_user_spoofer_rate_validation(site):
    with pytest.raises(ValueError):
        RealUserTrafficGenerator(site, ua_spoofer_rate=2.0)
    generator = RealUserTrafficGenerator(site)
    with pytest.raises(ValueError):
        generator.run(num_requests=0)


def test_real_user_spoofers_change_only_user_agent(site):
    generator = RealUserTrafficGenerator(site, rng=np.random.default_rng(2), ua_spoofer_rate=1.0)
    generator.run(num_requests=50, num_users=10)
    store = site.store.by_source(REAL_USER_SOURCE)
    # Spoofed UAs are present but platform values stay those of real devices.
    devices = set(store.unique_values(Attribute.UA_DEVICE))
    assert devices  # non-empty
    platforms = set(store.unique_values(Attribute.PLATFORM))
    assert platforms <= {"iPhone", "iPad", "MacIntel", "Win32", "Linux x86_64", "Linux armv7l", "Linux armv8l"}


# -- privacy technologies ----------------------------------------------------------


def test_apply_brave_keeps_values_plausible(rng, catalog):
    fingerprint = catalog.get("macbook-pro-chrome").fingerprint()
    farbled = apply_brave(fingerprint, rng)
    assert farbled[Attribute.DEVICE_MEMORY] in (0.5, 1.0, 2.0, 4.0, 8.0)
    assert farbled[Attribute.HARDWARE_CONCURRENCY] >= 2
    # Plugin entries are farbled, not hidden: the surface stays the device's.
    assert farbled[Attribute.PLUGINS] == fingerprint[Attribute.PLUGINS]


def test_apply_tor_standardises_fingerprint(catalog):
    fingerprint = catalog.get("macbook-pro-chrome").fingerprint()
    torified = apply_tor(fingerprint)
    assert torified[Attribute.TIMEZONE] == "UTC"
    assert torified[Attribute.PLATFORM] == "Win32"
    assert torified[Attribute.HARDWARE_CONCURRENCY] == 2
    assert torified[Attribute.UA_BROWSER] == "Firefox"
    assert torified[Attribute.PLUGINS]  # Firefox ESR exposes PDF plugins


def test_apply_fingerprint_spoofer_rewrites_ua_only(rng, catalog):
    fingerprint = catalog.get("windows-desktop-chrome").fingerprint()
    spoofed = apply_fingerprint_spoofer(fingerprint, rng)
    assert spoofed[Attribute.UA_DEVICE] in ("iPhone", "Mac")
    assert spoofed[Attribute.PLATFORM] == fingerprint[Attribute.PLATFORM]


def test_privacy_generator_runs_each_technology(site):
    generator = PrivacyTrafficGenerator(site, rng=np.random.default_rng(3))
    counts = generator.run_all(num_requests_each=20)
    assert set(counts) == {
        PrivacyTechnology.SAFARI,
        PrivacyTechnology.BRAVE,
        PrivacyTechnology.TOR,
        PrivacyTechnology.UBLOCK_ORIGIN,
        PrivacyTechnology.ADBLOCK_PLUS,
    }
    assert all(count == 20 for count in counts.values())


def test_privacy_safari_and_blockers_not_detected(site):
    generator = PrivacyTrafficGenerator(site, rng=np.random.default_rng(3))
    for technology in (PrivacyTechnology.SAFARI, PrivacyTechnology.UBLOCK_ORIGIN, PrivacyTechnology.ADBLOCK_PLUS):
        generator.run_technology(technology, num_requests=20)
        store = site.store.by_source(generator.source_label(technology))
        assert store.detection_rate("DataDome") == 0.0
        assert store.detection_rate("BotD") == 0.0


def test_privacy_tor_uses_exit_relays(site):
    generator = PrivacyTrafficGenerator(site, rng=np.random.default_rng(3))
    generator.run_technology(PrivacyTechnology.TOR, num_requests=20)
    store = site.store.by_source(generator.source_label(PrivacyTechnology.TOR))
    # Appendix G: DataDome flags Tor traffic, BotD does not.
    assert store.detection_rate("DataDome") == 1.0
    assert store.detection_rate("BotD") == 0.0


def test_privacy_brave_not_flagged_by_detectors(site):
    generator = PrivacyTrafficGenerator(site, rng=np.random.default_rng(3))
    generator.run_technology(PrivacyTechnology.BRAVE, num_requests=20)
    store = site.store.by_source(generator.source_label(PrivacyTechnology.BRAVE))
    assert store.detection_rate("BotD") == 0.0


def test_privacy_generator_validation(site):
    generator = PrivacyTrafficGenerator(site)
    with pytest.raises(ValueError):
        generator.run_technology(PrivacyTechnology.BRAVE, num_requests=0)
