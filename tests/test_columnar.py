"""Columnar/legacy equivalence: the detection engines must agree exactly.

The columnar engine (vectorized mining, compiled filter-list matching,
sharded classification) is only correct if it reproduces the
object-at-a-time reference byte for byte — identical filter lists and
identical per-request verdicts for any worker count and either executor.
These tests pin that contract on seeded random stores (property-style) and
on the shared small corpus.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.antibot.base import Decision
from repro.core.columnar import ColumnarTable, partition_rows_by_device
from repro.core.detector import FPInconsistent
from repro.core.pipeline import FPInconsistentPipeline
from repro.core.rules import FilterList, InconsistencyRule
from repro.core.spatial import SpatialInconsistencyMiner, SpatialMinerConfig
from repro.core.temporal import TemporalInconsistencyDetector
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.categories import AttributeCategory
from repro.fingerprint.fingerprint import Fingerprint
from repro.honeysite.storage import RecordedRequest, RequestStore
from repro.network.request import WebRequest

# -- synthetic seeded stores --------------------------------------------------------

_DEVICES = ["iPhone", "iPad", "Mac", "Windows PC", "SM-A515F", "Pixel 7", None]
_RESOLUTIONS = [(390, 844), (1920, 1080), (847, 476), (2560, 1440), None]
_TOUCH = ["None", "touchEvent/touchStart", None]
_BROWSERS = ["Mobile Safari", "Chrome", "Safari", "Chrome Mobile", None]
_VENDORS = ["Apple Computer, Inc.", "Google Inc.", "", None]
_PLATFORMS = ["iPhone", "Win32", "MacIntel", "Linux armv8l", None]
_OSES = ["iOS", "Windows", "Mac OS X", "Android", None]
_CORES = [2, 4, 6, 8, 16, 32, None]
_MEMORY = [0.25, 2.0, 4.0, 8.0, 3.0, None]
_TIMEZONES = ["America/Los_Angeles", "Europe/Berlin", "Asia/Shanghai", None]
_COUNTRIES = ["United States", "France", "China", "Germany", None]
_TOUCH_POINTS = [0, 5, 10, None]
_COLOR_DEPTHS = [16, 24, 32, None]
_PLUGINS = [(), ("Chrome PDF Viewer",), None]


def _random_store(seed: int, size: int = 400) -> RequestStore:
    """A seeded store exercising missing values, ties and shared devices."""

    rng = np.random.default_rng(seed)

    def pick(pool):
        return pool[int(rng.integers(0, len(pool)))]

    sources = [f"S{index}" for index in range(1, 6)]
    cookies = [f"cookie-{index}" for index in range(size // 8)] + [""]
    ips = [f"10.0.{index // 256}.{index % 256}" for index in range(size // 10)]
    records = []
    for index in range(size):
        values = {
            Attribute.UA_DEVICE: pick(_DEVICES),
            Attribute.SCREEN_RESOLUTION: pick(_RESOLUTIONS),
            Attribute.TOUCH_SUPPORT: pick(_TOUCH),
            Attribute.UA_BROWSER: pick(_BROWSERS),
            Attribute.VENDOR: pick(_VENDORS),
            Attribute.PLATFORM: pick(_PLATFORMS),
            Attribute.UA_OS: pick(_OSES),
            Attribute.HARDWARE_CONCURRENCY: pick(_CORES),
            Attribute.DEVICE_MEMORY: pick(_MEMORY),
            Attribute.TIMEZONE: pick(_TIMEZONES),
            Attribute.IP_COUNTRY: pick(_COUNTRIES),
            Attribute.MAX_TOUCH_POINTS: pick(_TOUCH_POINTS),
            Attribute.COLOR_DEPTH: pick(_COLOR_DEPTHS),
            Attribute.PLUGINS: pick(_PLUGINS),
        }
        fingerprint = Fingerprint(
            {key: value for key, value in values.items() if value is not None}
        )
        cookie = cookies[int(rng.integers(0, len(cookies)))]
        request = WebRequest(
            url_path="/test",
            timestamp=float(rng.integers(0, 50)),  # many timestamp ties
            ip_address=ips[int(rng.integers(0, len(ips)))],
            fingerprint=fingerprint,
            cookie=cookie or None,
        )
        records.append(
            RecordedRequest(
                request=request,
                source=sources[int(rng.integers(0, len(sources)))],
                cookie=cookie,
                datadome=Decision(
                    detector="DataDome", is_bot=bool(rng.integers(0, 2)), score=0.5
                ),
                botd=Decision(detector="BotD", is_bot=bool(rng.integers(0, 2)), score=0.5),
            )
        )
    return RequestStore(records)


MINER_CONFIG = SpatialMinerConfig(min_support=3, min_value_support=5, inflation_factor=0)


@pytest.mark.parametrize("seed", [0, 1, 7, 99])
def test_mining_equivalence_on_random_stores(seed):
    store = _random_store(seed)
    legacy = SpatialInconsistencyMiner(config=MINER_CONFIG).mine_store(store)
    columnar = SpatialInconsistencyMiner(config=MINER_CONFIG).mine_table(store.columnar())
    assert legacy.to_json() == columnar.to_json()


@pytest.mark.parametrize("seed", [0, 1, 7, 99])
def test_classification_equivalence_on_random_stores(seed):
    store = _random_store(seed)
    detector = FPInconsistent(miner=SpatialInconsistencyMiner(config=MINER_CONFIG))
    detector.fit(store, engine="legacy")
    legacy = detector.classify_store(store, engine="legacy")
    columnar = detector.classify_store(store, engine="columnar")
    assert list(legacy) == list(columnar)
    assert legacy == columnar


@pytest.mark.parametrize("workers", [2, 3, 5])
def test_sharded_classification_equivalence(workers):
    store = _random_store(3)
    detector = FPInconsistent(miner=SpatialInconsistencyMiner(config=MINER_CONFIG))
    detector.fit(store)
    serial = detector.classify_store(store, workers=1)
    sharded = detector.classify_store(store, workers=workers, executor="thread")
    assert serial == sharded


def test_sharded_mining_equivalence():
    store = _random_store(5)
    table = store.columnar()
    serial = SpatialInconsistencyMiner(config=MINER_CONFIG).mine_table(table)
    for workers in (2, 4):
        sharded = SpatialInconsistencyMiner(config=MINER_CONFIG).mine_table(
            table, workers=workers, executor="thread"
        )
        assert serial.to_json() == sharded.to_json()


def test_process_executor_equivalence():
    """The process pool must agree with the thread pool and the serial path."""

    store = _random_store(11, size=150)
    detector = FPInconsistent(miner=SpatialInconsistencyMiner(config=MINER_CONFIG))
    detector.fit(store)
    serial = detector.classify_store(store, workers=1)
    process = detector.classify_store(store, workers=2, executor="process")
    assert serial == process
    mined = SpatialInconsistencyMiner(config=MINER_CONFIG).mine_table(
        store.columnar(), workers=2, executor="process"
    )
    assert mined.to_json() == detector.filter_list.to_json()


def test_temporal_table_equivalence():
    store = _random_store(13)
    detector_a = TemporalInconsistencyDetector()
    detector_b = TemporalInconsistencyDetector()
    assert detector_a.evaluate_store(store) == detector_b.evaluate_table(store.columnar())


def test_anonymous_traffic_equivalence():
    """Stores with no cookies (or no source addresses) at all must classify,
    not crash on the empty key column (regression)."""

    base = _random_store(37, size=60)
    no_cookies = RequestStore(
        RecordedRequest(
            request=record.request.with_cookie(None),
            source=record.source,
            cookie=None,  # anonymous: no cookie was ever issued
            datadome=record.datadome,
            botd=record.botd,
        )
        for record in base
    )
    detector = FPInconsistent(miner=SpatialInconsistencyMiner(config=MINER_CONFIG))
    detector.fit(no_cookies)
    legacy = detector.classify_store(no_cookies, engine="legacy")
    columnar = detector.classify_store(no_cookies, engine="columnar")
    assert legacy == columnar


def test_custom_temporal_attributes_stay_equivalent():
    """Tracked attributes outside the default table set must still be
    extracted (regression: the pipeline used to drop their flags)."""

    from repro.core.temporal import DEFAULT_COOKIE_ATTRIBUTES

    store = _random_store(29)
    temporal = TemporalInconsistencyDetector(
        cookie_attributes=DEFAULT_COOKIE_ATTRIBUTES + (Attribute.USER_AGENT,)
    )
    legacy = FPInconsistentPipeline(
        engine="legacy", miner_config=MINER_CONFIG, temporal=temporal
    ).run(store)
    columnar = FPInconsistentPipeline(
        miner_config=MINER_CONFIG, temporal=temporal.clone()
    ).run(store)
    assert legacy.verdicts == columnar.verdicts
    assert legacy.filter_list.to_json() == columnar.filter_list.to_json()


def test_missing_columns_fail_loudly():
    """A table extracted without the columns a component needs must raise,
    not silently weaken detection."""

    store = _random_store(31, size=50)
    narrow = ColumnarTable.from_store(store, attributes=[Attribute.UA_DEVICE])

    temporal = TemporalInconsistencyDetector()
    with pytest.raises(ValueError, match="tracked attribute"):
        temporal.evaluate_table(narrow)

    rule = InconsistencyRule(
        category=AttributeCategory.SCREEN,
        attribute_a=Attribute.UA_DEVICE,
        value_a="iPhone",
        attribute_b=Attribute.SCREEN_RESOLUTION,
        value_b="1920x1080",
    )
    with pytest.raises(ValueError, match="rule attribute"):
        FilterList([rule]).compile(narrow)

    detector = FPInconsistent(filter_list=FilterList())
    with pytest.raises(ValueError, match="Location predicate"):
        detector.classify_table(narrow, use_temporal=False)


def test_pipeline_engine_equivalence_on_corpus(small_corpus):
    bot = small_corpus.bot_store
    real = small_corpus.real_user_store
    legacy = FPInconsistentPipeline(engine="legacy").run(
        bot, real_user_store=real, check_generalization=True
    )
    columnar = FPInconsistentPipeline(workers=2, executor="thread").run(
        bot, real_user_store=real, check_generalization=True
    )
    assert legacy.filter_list.to_json() == columnar.filter_list.to_json()
    assert legacy.verdicts == columnar.verdicts
    assert legacy.table3 == columnar.table3
    assert legacy.table4 == columnar.table4
    assert legacy.real_user_tnr == columnar.real_user_tnr
    assert legacy.generalization == columnar.generalization


def test_pipeline_rejects_unknown_engine():
    with pytest.raises(ValueError):
        FPInconsistentPipeline(engine="quantum")
    with pytest.raises(ValueError):
        FPInconsistentPipeline(workers=0).run(_random_store(0, size=10))


# -- columnar table internals ---------------------------------------------------------


def test_table_round_trip_and_codes():
    store = _random_store(17, size=80)
    table = store.columnar()
    for record_index, record in enumerate(store):
        fingerprint = record.request.fingerprint
        for attribute in table.attributes:
            assert table.value_at(attribute, record_index) == fingerprint.value_for_grouping(
                attribute
            )
        assert table.cookie_at(record_index) == record.cookie
        assert table.ip_at(record_index) == record.request.ip_address
    device_values = table.values_of(Attribute.UA_DEVICE)
    assert len(device_values) == len(set(device_values))
    for code, value in enumerate(device_values):
        assert table.code_of(Attribute.UA_DEVICE, value) == code
    assert table.code_of(Attribute.UA_DEVICE, "Nokia 3310") is None


def test_table_take_slices_metadata():
    table = _random_store(19, size=60).columnar()
    rows = np.array([3, 7, 21], dtype=np.int64)
    sliced = table.take(rows)
    assert sliced.n_rows == 3
    for position, row in enumerate(rows):
        assert sliced.value_at(Attribute.UA_DEVICE, position) == table.value_at(
            Attribute.UA_DEVICE, int(row)
        )
        assert sliced.cookie_at(position) == table.cookie_at(int(row))
        assert int(sliced.request_ids[position]) == int(table.request_ids[int(row)])


def test_partition_is_device_closed():
    table = _random_store(23).columnar()
    partitions = partition_rows_by_device(table, 4)
    all_rows = np.concatenate(partitions)
    assert sorted(all_rows.tolist()) == list(range(table.n_rows))
    cookie_shard = {}
    ip_shard = {}
    for shard_index, rows in enumerate(partitions):
        for row in rows:
            cookie = table.cookie_at(int(row))
            ip = table.ip_at(int(row))
            if cookie:
                assert cookie_shard.setdefault(cookie, shard_index) == shard_index
            if ip:
                assert ip_shard.setdefault(ip, shard_index) == shard_index


def test_compiled_filter_list_tie_break_matches_reference():
    """When several rules match one fingerprint, the compiled index must
    pick the same winner as ``FilterList.first_match``."""

    rules = [
        InconsistencyRule(
            category=AttributeCategory.BROWSER,
            attribute_a=Attribute.UA_BROWSER,
            value_a="Mobile Safari",
            attribute_b=Attribute.VENDOR,
            value_b="Google Inc.",
        ),
        InconsistencyRule(
            category=AttributeCategory.SCREEN,
            attribute_a=Attribute.UA_DEVICE,
            value_a="iPhone",
            attribute_b=Attribute.SCREEN_RESOLUTION,
            value_b="1920x1080",
        ),
        InconsistencyRule(
            category=AttributeCategory.SCREEN,
            attribute_a=Attribute.UA_BROWSER,
            value_a="Mobile Safari",
            attribute_b=Attribute.TOUCH_SUPPORT,
            value_b="None",
        ),
    ]
    filter_list = FilterList(rules)
    fingerprints = [
        Fingerprint(
            {
                Attribute.UA_DEVICE: "iPhone",
                Attribute.UA_BROWSER: "Mobile Safari",
                Attribute.VENDOR: "Google Inc.",
                Attribute.SCREEN_RESOLUTION: (1920, 1080),
                Attribute.TOUCH_SUPPORT: "None",
            }
        ),
        Fingerprint(
            {
                Attribute.UA_DEVICE: "iPhone",
                Attribute.SCREEN_RESOLUTION: (1920, 1080),
                Attribute.TOUCH_SUPPORT: "None",
            }
        ),
        Fingerprint({Attribute.UA_DEVICE: "Windows PC"}),
    ]
    table = ColumnarTable.from_fingerprints(fingerprints)
    compiled = filter_list.compile(table)
    vectorized = compiled.first_match_rows()
    reference = [filter_list.first_match(fingerprint) for fingerprint in fingerprints]
    assert vectorized == reference
    assert vectorized[0] is not None and vectorized[2] is None
