"""Unit tests for the attribute registry and value coercion."""

import pytest

from repro.fingerprint.attributes import (
    ATTRIBUTE_SPECS,
    Attribute,
    IMMUTABLE_ATTRIBUTES,
    ValueKind,
    all_attributes,
    coerce_value,
    format_resolution,
    is_immutable,
    parse_resolution,
    spec_for,
)


def test_every_attribute_has_a_spec():
    for attribute in Attribute:
        assert attribute in ATTRIBUTE_SPECS


def test_spec_for_returns_matching_attribute():
    spec = spec_for(Attribute.HARDWARE_CONCURRENCY)
    assert spec.attribute is Attribute.HARDWARE_CONCURRENCY
    assert spec.kind is ValueKind.INTEGER


def test_platform_is_immutable():
    assert is_immutable(Attribute.PLATFORM)


def test_user_agent_is_mutable():
    assert not is_immutable(Attribute.USER_AGENT)


def test_immutable_attributes_subset_of_registry():
    assert set(IMMUTABLE_ATTRIBUTES) <= set(ATTRIBUTE_SPECS)
    assert Attribute.HARDWARE_CONCURRENCY in IMMUTABLE_ATTRIBUTES
    assert Attribute.DEVICE_MEMORY in IMMUTABLE_ATTRIBUTES


def test_all_attributes_iterates_everything():
    assert set(all_attributes()) == set(Attribute)


def test_coerce_integer_from_string():
    assert coerce_value(Attribute.HARDWARE_CONCURRENCY, "8") == 8


def test_coerce_float():
    assert coerce_value(Attribute.DEVICE_MEMORY, "4.0") == pytest.approx(4.0)


def test_coerce_boolean_from_strings():
    assert coerce_value(Attribute.WEBDRIVER, "true") is True
    assert coerce_value(Attribute.WEBDRIVER, "False") is False
    assert coerce_value(Attribute.WEBDRIVER, 1) is True


def test_coerce_boolean_rejects_garbage():
    with pytest.raises(ValueError):
        coerce_value(Attribute.WEBDRIVER, "maybe")


def test_coerce_string_list_from_comma_string():
    assert coerce_value(Attribute.PLUGINS, "PDF Viewer, Chrome PDF Viewer") == (
        "PDF Viewer",
        "Chrome PDF Viewer",
    )


def test_coerce_string_list_from_sequence():
    assert coerce_value(Attribute.LANGUAGES, ["en-US", "en"]) == ("en-US", "en")


def test_coerce_none_passes_through():
    assert coerce_value(Attribute.PLUGINS, None) is None


def test_parse_resolution_from_string():
    assert parse_resolution("390x844") == (390, 844)
    assert parse_resolution("390X844") == (390, 844)


def test_parse_resolution_from_sequence():
    assert parse_resolution([1920, 1080]) == (1920, 1080)
    assert parse_resolution((390, 844)) == (390, 844)


def test_parse_resolution_rejects_garbage():
    with pytest.raises(ValueError):
        parse_resolution("huge screen")


def test_format_resolution_round_trip():
    assert format_resolution((390, 844)) == "390x844"
    assert parse_resolution(format_resolution((390, 844))) == (390, 844)


def test_format_resolution_none():
    assert format_resolution(None) is None


def test_coerce_resolution_attribute():
    assert coerce_value(Attribute.SCREEN_RESOLUTION, "414x896") == (414, 896)
