"""Unit tests for the request, cookie and header models."""

import numpy as np
import pytest

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.network.cookies import ClientCookieStore, CookieIssuer
from repro.network.headers import accept_language_for, build_headers, parse_accept_language
from repro.network.request import WebRequest


def _fingerprint():
    return Fingerprint(
        {
            Attribute.USER_AGENT: "Mozilla/5.0 (X11; Linux x86_64) Chrome/118.0.0.0",
            Attribute.LANGUAGES: ("fr-FR", "fr", "en-US"),
            Attribute.PLATFORM: "Linux x86_64",
        }
    )


# -- WebRequest ---------------------------------------------------------------


def test_request_requires_leading_slash():
    with pytest.raises(ValueError):
        WebRequest(url_path="nope", timestamp=0.0, ip_address="100.0.0.1", fingerprint=_fingerprint())


def test_request_rejects_negative_timestamp():
    with pytest.raises(ValueError):
        WebRequest(url_path="/x", timestamp=-1.0, ip_address="100.0.0.1", fingerprint=_fingerprint())


def test_request_ids_increase():
    first = WebRequest(url_path="/a", timestamp=0.0, ip_address="100.0.0.1", fingerprint=_fingerprint())
    second = WebRequest(url_path="/a", timestamp=1.0, ip_address="100.0.0.1", fingerprint=_fingerprint())
    assert second.request_id > first.request_id


def test_request_user_agent_prefers_header():
    fingerprint = _fingerprint()
    request = WebRequest(
        url_path="/a",
        timestamp=0.0,
        ip_address="100.0.0.1",
        fingerprint=fingerprint,
        headers={"User-Agent": "custom-agent"},
    )
    assert request.user_agent == "custom-agent"
    bare = WebRequest(url_path="/a", timestamp=0.0, ip_address="100.0.0.1", fingerprint=fingerprint)
    assert "Chrome" in bare.user_agent


def test_request_attribute_accessor_and_cookie_copy():
    request = WebRequest(url_path="/a", timestamp=0.0, ip_address="100.0.0.1", fingerprint=_fingerprint())
    assert request.attribute(Attribute.PLATFORM) == "Linux x86_64"
    updated = request.with_cookie("abc")
    assert updated.cookie == "abc" and request.cookie is None


def test_request_serialisation_round_trip():
    request = WebRequest(
        url_path="/a",
        timestamp=3.5,
        ip_address="100.0.0.1",
        fingerprint=_fingerprint(),
        cookie="c1",
        headers={"User-Agent": "ua"},
    )
    rebuilt = WebRequest.from_dict(request.to_dict())
    assert rebuilt.url_path == request.url_path
    assert rebuilt.cookie == "c1"
    assert rebuilt.fingerprint == request.fingerprint


# -- cookies -----------------------------------------------------------------------


def test_cookie_issuer_unique_values():
    issuer = CookieIssuer(np.random.default_rng(0))
    values = {issuer.issue() for _ in range(200)}
    assert len(values) == 200
    assert issuer.issued_count == 200


def test_cookie_issuer_ensure_echoes_existing():
    issuer = CookieIssuer(np.random.default_rng(0))
    assert issuer.ensure("existing") == "existing"
    assert issuer.ensure(None) != ""


def test_client_cookie_store_full_retention():
    store = ClientCookieStore(retention=1.0, rng=np.random.default_rng(0))
    assert store.outgoing() is None
    store.receive("cookie-1")
    assert all(store.outgoing() == "cookie-1" for _ in range(20))


def test_client_cookie_store_zero_retention():
    store = ClientCookieStore(retention=0.0, rng=np.random.default_rng(0))
    store.receive("cookie-1")
    assert store.outgoing() is None


def test_client_cookie_store_validation():
    with pytest.raises(ValueError):
        ClientCookieStore(retention=1.5)
    store = ClientCookieStore()
    with pytest.raises(ValueError):
        store.receive("")
    store.receive("x")
    store.clear()
    assert store.value is None


# -- headers --------------------------------------------------------------------------


def test_accept_language_quality_values():
    header = accept_language_for(("fr-FR", "fr", "en-US"))
    assert header == "fr-FR,fr;q=0.9,en-US;q=0.8"
    assert accept_language_for(None) == "en-US,en;q=0.9"


def test_parse_accept_language_round_trip():
    languages = ("fr-FR", "fr", "en-US")
    assert parse_accept_language(accept_language_for(languages)) == languages


def test_build_headers_reflects_fingerprint():
    headers = build_headers(_fingerprint(), referer="https://example.com/")
    assert "Chrome" in headers["User-Agent"]
    assert headers["Accept-Language"].startswith("fr-FR")
    assert headers["Referer"] == "https://example.com/"
