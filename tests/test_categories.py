"""Unit tests for attribute categories (Table 7)."""

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.categories import (
    AttributeCategory,
    CATEGORY_ATTRIBUTES,
    all_candidate_pairs,
    attributes_in,
    categories_of,
    category_pairs,
)


def test_four_categories_exist():
    assert set(AttributeCategory) == {
        AttributeCategory.SCREEN,
        AttributeCategory.DEVICE,
        AttributeCategory.BROWSER,
        AttributeCategory.LOCATION,
    }


def test_screen_category_contains_table7_attributes():
    screen = attributes_in(AttributeCategory.SCREEN)
    assert Attribute.UA_DEVICE in screen
    assert Attribute.SCREEN_RESOLUTION in screen
    assert Attribute.TOUCH_SUPPORT in screen
    assert Attribute.MAX_TOUCH_POINTS in screen


def test_device_category_contains_table7_attributes():
    device = attributes_in(AttributeCategory.DEVICE)
    assert set(device) == {
        Attribute.UA_DEVICE,
        Attribute.DEVICE_MEMORY,
        Attribute.HARDWARE_CONCURRENCY,
        Attribute.UA_OS,
    }


def test_location_category_contains_timezone_and_ip():
    location = attributes_in(AttributeCategory.LOCATION)
    assert Attribute.TIMEZONE in location
    assert Attribute.IP_COUNTRY in location


def test_category_pairs_are_unordered_combinations():
    pairs = list(category_pairs(AttributeCategory.DEVICE))
    count = len(attributes_in(AttributeCategory.DEVICE))
    assert len(pairs) == count * (count - 1) // 2
    assert all(left != right for left, right in pairs)


def test_all_candidate_pairs_cover_every_category():
    categories = {category for category, _a, _b in all_candidate_pairs()}
    assert categories == set(AttributeCategory)


def test_categories_of_shared_attribute():
    categories = categories_of(Attribute.UA_DEVICE)
    assert AttributeCategory.SCREEN in categories
    assert AttributeCategory.DEVICE in categories


def test_categories_of_unused_attribute():
    assert categories_of(Attribute.CANVAS) == ()


def test_every_category_is_nonempty():
    for category, members in CATEGORY_ATTRIBUTES.items():
        assert members, f"{category} has no attributes"
