"""Tests for stream checkpoint/restore (``repro.stream.checkpoint``).

The contract under test: a replay killed mid-stream (modelled
deterministically by ``max_batches``) and resumed from its last published
snapshot produces verdicts **byte-identical** to an uninterrupted run —
for the single stream and for the parallel gateway — and the snapshot
file itself is crash-safe (atomic replace, checksummed, torn writes
detected on load, failed writes never clobbering the previous snapshot).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.analysis.engine import CorpusEngine
from repro.core.detector import FPInconsistent
from repro.serve import DetectionGateway, DeviceRouter, GatewayReplayDriver
from repro.stream import (
    ArrivalStream,
    CheckpointError,
    FilterListRefresher,
    ReplayDriver,
    StreamCheckpointer,
    StreamIngestor,
    verdicts_digest,
)
from repro.stream.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    read_checkpoint,
    write_checkpoint,
)

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    include_privacy=True,
    real_user_requests=120,
    privacy_requests_each=12,
)


@pytest.fixture(scope="module")
def corpus():
    return CorpusEngine(**TINY).build(workers=1)


@pytest.fixture(scope="module")
def fitted(corpus):
    detector = FPInconsistent()
    table = detector.extract_table(corpus.bot_store)
    detector.fit_table(table)
    verdicts = detector.classify_table(table)
    return detector, table, verdicts


# -- the blob format -------------------------------------------------------------


def test_checkpoint_blob_roundtrips(tmp_path):
    state = {"cursor": 7, "values": ["a", "b"], "array": np.arange(5)}
    path = tmp_path / "ck"
    write_checkpoint(path, state)
    loaded = read_checkpoint(path)
    assert loaded["cursor"] == 7 and loaded["values"] == ["a", "b"]
    assert np.array_equal(loaded["array"], np.arange(5))
    assert path.read_bytes()[:4] == CHECKPOINT_MAGIC
    assert not list(tmp_path.glob(".*.tmp"))  # temp file consumed by the rename


def test_read_rejects_non_checkpoint_files(tmp_path):
    path = tmp_path / "junk"
    path.write_bytes(b"definitely not a checkpoint")
    with pytest.raises(CheckpointError, match="not a stream checkpoint"):
        read_checkpoint(path)
    with pytest.raises(CheckpointError, match="unreadable"):
        read_checkpoint(tmp_path / "absent")


def test_read_rejects_torn_and_tampered_blobs(tmp_path):
    path = tmp_path / "ck"
    write_checkpoint(path, {"cursor": 1})
    blob = path.read_bytes()

    torn = tmp_path / "torn"
    torn.write_bytes(blob[: len(blob) - 3])
    with pytest.raises(CheckpointError, match="checksum"):
        read_checkpoint(torn)

    tampered = tmp_path / "tampered"
    tampered.write_bytes(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
    with pytest.raises(CheckpointError, match="checksum"):
        read_checkpoint(tampered)


def test_read_rejects_future_format_versions(tmp_path):
    path = tmp_path / "ck"
    write_checkpoint(path, {"cursor": 1})
    blob = bytearray(path.read_bytes())
    blob[4:8] = (CHECKPOINT_VERSION + 1).to_bytes(4, "big")
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError, match="format version"):
        read_checkpoint(path)


# -- the periodic checkpointer ---------------------------------------------------


def test_checkpointer_cadence_and_validation(tmp_path):
    with pytest.raises(ValueError, match="every_batches"):
        StreamCheckpointer(tmp_path, every_batches=0)
    checkpointer = StreamCheckpointer(tmp_path, every_batches=4)
    assert [n for n in range(13) if checkpointer.due(n)] == [4, 8, 12]
    assert checkpointer.load() is None  # nothing published yet


def test_failed_save_keeps_the_previous_snapshot(monkeypatch, tmp_path):
    checkpointer = StreamCheckpointer(tmp_path, every_batches=1)
    assert checkpointer.save({"cursor": 1}) is True

    # Every subsequent write crashes mid-stream (truncated then raised):
    # save() absorbs it, and the published snapshot stays the old one.
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "checkpoint_write:truncate:1")
    assert checkpointer.save({"cursor": 2}) is False
    assert checkpointer.saves == 1 and checkpointer.failures == 1
    assert checkpointer.load() == {"cursor": 1}
    assert not list(tmp_path.glob(".*.tmp"))  # the torn temp was removed

    monkeypatch.delenv(faults.FAULTS_ENV_VAR)
    assert checkpointer.save({"cursor": 3}) is True
    assert checkpointer.load() == {"cursor": 3}


# -- stream kill-and-resume ------------------------------------------------------


def test_stream_resume_is_byte_identical(tmp_path, corpus, fitted):
    detector, _table, batch_verdicts = fitted
    full = ReplayDriver(detector, batch_size=256).replay(corpus.bot_store)

    directory = tmp_path / "ck"
    partial = ReplayDriver(detector, batch_size=256).replay(
        corpus.bot_store,
        checkpointer=StreamCheckpointer(directory, every_batches=2),
        max_batches=3,
    )
    assert partial.batches == 3
    assert partial.checkpoints_saved == 1  # due at batch 2
    assert partial.resumed_from_batch is None

    resumed = ReplayDriver(detector, batch_size=256).replay(
        corpus.bot_store,
        checkpointer=StreamCheckpointer(directory, every_batches=2),
        resume=True,
    )
    # The snapshot was taken at batch 2, one batch before the kill: the
    # resumed run re-scores from there and converges byte-identically.
    assert resumed.resumed_from_batch == 2
    assert resumed.batches == full.batches
    assert verdicts_digest(resumed.verdicts) == verdicts_digest(full.verdicts)
    assert verdicts_digest(resumed.verdicts) == verdicts_digest(batch_verdicts)


def test_stream_resume_restores_refresher_state(tmp_path, corpus, fitted):
    detector, _table, _verdicts = fitted

    def refresher():
        return FilterListRefresher(detector.miner, interval_days=20.0, window_rows=2_000)

    full = ReplayDriver(detector, batch_size=256, refresher=refresher()).replay(
        corpus.bot_store
    )
    assert full.refreshes  # the schedule actually fires on this corpus

    directory = tmp_path / "ck"
    ReplayDriver(detector, batch_size=256, refresher=refresher()).replay(
        corpus.bot_store,
        checkpointer=StreamCheckpointer(directory, every_batches=2),
        max_batches=5,
    )
    resumed = ReplayDriver(detector, batch_size=256, refresher=refresher()).replay(
        corpus.bot_store,
        checkpointer=StreamCheckpointer(directory, every_batches=2),
        resume=True,
    )
    # The sliding window, stream clock and deployed list all came back:
    # the re-mining schedule and the verdicts match the uninterrupted run.
    assert resumed.refreshes == full.refreshes
    assert verdicts_digest(resumed.verdicts) == verdicts_digest(full.verdicts)


def test_resume_with_failing_saves_still_converges(monkeypatch, tmp_path, corpus, fitted):
    detector, _table, _verdicts = fitted
    full = ReplayDriver(detector, batch_size=256).replay(corpus.bot_store)

    # Every other snapshot write crashes mid-stream; losing a snapshot
    # costs recovery granularity, never correctness.
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "checkpoint_write:truncate:0.5")
    directory = tmp_path / "ck"
    partial = ReplayDriver(detector, batch_size=256).replay(
        corpus.bot_store,
        checkpointer=StreamCheckpointer(directory, every_batches=1),
        max_batches=5,
    )
    assert partial.checkpoint_failures > 0
    assert partial.checkpoints_saved > 0

    monkeypatch.delenv(faults.FAULTS_ENV_VAR)
    resumed = ReplayDriver(detector, batch_size=256).replay(
        corpus.bot_store,
        checkpointer=StreamCheckpointer(directory, every_batches=1),
        resume=True,
    )
    assert resumed.resumed_from_batch is not None
    assert verdicts_digest(resumed.verdicts) == verdicts_digest(full.verdicts)


def test_corrupt_snapshot_falls_back_to_a_fresh_replay(tmp_path, corpus, fitted):
    detector, _table, batch_verdicts = fitted
    directory = tmp_path / "ck"
    checkpointer = StreamCheckpointer(directory, every_batches=2)
    ReplayDriver(detector, batch_size=256).replay(
        corpus.bot_store, checkpointer=checkpointer, max_batches=3
    )
    # Corrupt the published snapshot the way a disk error would.
    blob = bytearray(checkpointer.path.read_bytes())
    blob[-1] ^= 0xFF
    checkpointer.path.write_bytes(bytes(blob))

    resumed = ReplayDriver(detector, batch_size=256).replay(
        corpus.bot_store,
        checkpointer=StreamCheckpointer(directory, every_batches=2),
        resume=True,
    )
    # Damage must not block recovery: warn, start fresh, same verdicts.
    assert resumed.resumed_from_batch is None
    assert verdicts_digest(resumed.verdicts) == verdicts_digest(batch_verdicts)


def test_mismatched_snapshot_is_a_configuration_error(tmp_path, corpus, fitted):
    detector, _table, _verdicts = fitted
    directory = tmp_path / "ck"
    ReplayDriver(detector, batch_size=256).replay(
        corpus.bot_store,
        checkpointer=StreamCheckpointer(directory, every_batches=2),
        max_batches=3,
    )
    with pytest.raises(CheckpointError, match="does not match"):
        ReplayDriver(detector, batch_size=128).replay(
            corpus.bot_store,
            checkpointer=StreamCheckpointer(directory, every_batches=2),
            resume=True,
        )
    with pytest.raises(CheckpointError, match="does not match"):
        ReplayDriver(detector, batch_size=256).replay(
            corpus.real_user_store,
            checkpointer=StreamCheckpointer(directory, every_batches=2),
            resume=True,
        )


def test_resume_requires_a_checkpointer(corpus, fitted):
    detector, _table, _verdicts = fitted
    with pytest.raises(ValueError, match="requires a checkpointer"):
        ReplayDriver(detector, batch_size=256).replay(corpus.bot_store, resume=True)
    with pytest.raises(ValueError, match="requires a checkpointer"):
        with DetectionGateway(detector, workers=2) as gateway:
            GatewayReplayDriver(gateway, batch_size=256).replay(
                corpus.bot_store, resume=True
            )


# -- gateway kill-and-resume -----------------------------------------------------


def test_serve_resume_is_byte_identical(tmp_path, corpus, fitted):
    detector, table, batch_verdicts = fitted
    directory = tmp_path / "ck"

    with DetectionGateway(detector, router=DeviceRouter.from_table(table, 2)) as gateway:
        partial = GatewayReplayDriver(gateway, batch_size=256).replay(
            corpus.bot_store,
            checkpointer=StreamCheckpointer(directory, every_batches=2),
            max_batches=3,
        )
    assert partial.checkpoints_saved == 1

    with DetectionGateway(detector, router=DeviceRouter.from_table(table, 2)) as gateway:
        resumed = GatewayReplayDriver(gateway, batch_size=256).replay(
            corpus.bot_store,
            checkpointer=StreamCheckpointer(directory, every_batches=2),
            resume=True,
        )
    assert resumed.resumed_from_batch == 2
    assert resumed.verdicts == batch_verdicts
    assert verdicts_digest(resumed.verdicts) == verdicts_digest(batch_verdicts)


# -- restorable component state --------------------------------------------------


def test_ingestor_state_roundtrip_preserves_the_vocabulary(corpus, fitted):
    detector, _table, _verdicts = fitted
    arrivals = ArrivalStream(corpus.bot_store)

    original = StreamIngestor(attributes=detector.table_attributes())
    arrivals.ingest(original, 0, 512)
    restored = StreamIngestor(attributes=detector.table_attributes())
    restored.restore_state(original.export_state())
    assert restored.rows_ingested == original.rows_ingested

    next_original = arrivals.ingest(original, 512, 256)
    next_restored = arrivals.ingest(restored, 512, 256)
    for attribute in next_original.attributes:
        assert np.array_equal(
            next_original.codes_of(attribute), next_restored.codes_of(attribute)
        )
        assert next_original.values_of(attribute) == next_restored.values_of(attribute)
    assert np.array_equal(next_original.cookie_codes, next_restored.cookie_codes)
    assert np.array_equal(next_original.ip_codes, next_restored.ip_codes)


def test_ingestor_restore_rejects_a_different_attribute_set(fitted):
    detector, _table, _verdicts = fitted
    attributes = detector.table_attributes()
    original = StreamIngestor(attributes=attributes)
    with pytest.raises(ValueError, match="attribute"):
        StreamIngestor(attributes=attributes[:-1]).restore_state(
            original.export_state()
        )
