"""Tests for the fault-injection harness and the fault-tolerant executors.

Three layers are pinned here against the deterministic fault plans of
``repro.faults``:

* the plan itself — parsing, seeding and pure ``(seed, point, key)``
  decisions;
* ``map_shards`` — bounded retries with backoff, pool rebuilds after a
  killed worker, and the in-process serial fallback for poisoned shards,
  all producing byte-identical corpora;
* the gateway's worker supervision — failed workers rebuilt with state
  carried over (verdicts byte-identical to a clean run for worker counts
  {1, 2, 4}), poisoned row groups dead-lettered, failed re-mines keeping
  the deployed filter list;
* the corpus cache — a write torn mid-archive never publishes an entry.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import faults
from repro.analysis.cache import CorpusCache
from repro.analysis.engine import (
    BACKOFF_BASE_SECONDS,
    BACKOFF_CAP_SECONDS,
    CorpusEngine,
    build_or_load_corpus,
    map_shards,
    retry_backoff_seconds,
)
from repro.core.detector import FPInconsistent
from repro.serve import DetectionGateway, DeviceRouter, GatewayReplayDriver
from repro.stream import FilterListRefresher, verdicts_digest

TINY = dict(
    seed=29,
    scale=0.004,
    include_real_users=True,
    include_privacy=True,
    real_user_requests=120,
    privacy_requests_each=12,
)


def _corpus_digest(corpus) -> str:
    return hashlib.sha256(
        "\n".join(
            json.dumps(record.to_dict(), sort_keys=True) for record in corpus.store
        ).encode()
    ).hexdigest()


@pytest.fixture(scope="module")
def corpus():
    return CorpusEngine(**TINY).build(workers=1)


@pytest.fixture(scope="module")
def baseline_digest(corpus):
    """Digest of the fault-free build (execution path never changes bytes)."""

    return _corpus_digest(corpus)


@pytest.fixture(scope="module")
def fitted(corpus):
    detector = FPInconsistent()
    table = detector.extract_table(corpus.bot_store)
    detector.fit_table(table)
    verdicts = detector.classify_table(table)
    return detector, table, verdicts


# -- plan parsing and decisions --------------------------------------------------


def test_plan_parses_multi_rule_spec():
    plan = faults.FaultPlan.parse(
        " shard_run:raise:0.1 , refresh_mine:raise:1, checkpoint_write:truncate:0.5 ,",
        seed=3,
    )
    assert {rule.point for rule in plan.rules} == {
        "shard_run",
        "refresh_mine",
        "checkpoint_write",
    }
    assert plan.seed == 3


@pytest.mark.parametrize(
    "spec",
    [
        "shard_run:raise",  # not point:mode:probability
        "unknown_point:raise:0.5",
        "shard_run:explode:0.5",
        "shard_run:raise:often",
        "shard_run:raise:1.5",
        "shard_run:raise:0.1,shard_run:kill:0.2",  # duplicate point
    ],
)
def test_plan_rejects_malformed_specs(spec):
    with pytest.raises(faults.FaultPlanError):
        faults.FaultPlan.parse(spec)


def test_decisions_are_pure_functions_of_seed_point_key():
    plan = faults.FaultPlan.parse("shard_run:raise:0.5", seed=11)
    keys = [f"corpus:{index}:0" for index in range(200)]
    first = [plan.decide("shard_run", key) is not None for key in keys]
    assert first == [plan.decide("shard_run", key) is not None for key in keys]
    assert any(first) and not all(first)  # p=0.5 over 200 keys fires partially
    reseeded = faults.FaultPlan.parse("shard_run:raise:0.5", seed=12)
    assert first != [reseeded.decide("shard_run", key) is not None for key in keys]
    assert plan.decide("worker_classify", keys[0]) is None  # no rule → never


def test_probability_bounds_always_and_never_fire():
    always = faults.FaultPlan.parse("shard_run:raise:1")
    never = faults.FaultPlan.parse("shard_run:raise:0")
    for key in ("a", "b", "c"):
        assert always.decide("shard_run", key) is not None
        assert never.decide("shard_run", key) is None
    with pytest.raises(faults.InjectedFault, match="shard_run"):
        always.check("shard_run", "a")


def test_kill_downgrades_to_raise_outside_worker_processes():
    plan = faults.FaultPlan.parse("shard_run:kill:1")
    # allow_kill=False marks the coordinator: the fault must raise, never
    # os._exit the test process.
    with pytest.raises(faults.InjectedFault, match="kill"):
        plan.check("shard_run", "k", allow_kill=False)


def test_truncate_tears_the_file_then_raises(tmp_path):
    victim = tmp_path / "blob"
    victim.write_bytes(b"x" * 100)
    plan = faults.FaultPlan.parse("checkpoint_write:truncate:1")
    with pytest.raises(faults.InjectedFault):
        plan.check("checkpoint_write", "t", path=victim)
    assert victim.stat().st_size == 50
    # Without a path the mode degrades to a plain raise.
    with pytest.raises(faults.InjectedFault):
        plan.check("checkpoint_write", "t")


def test_active_plan_tracks_the_environment(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
    assert faults.active_plan() is None
    faults.check("shard_run", "noop")  # no plan → no-op

    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "shard_run:raise:1")
    plan = faults.active_plan()
    assert plan is not None and plan.seed == 0
    assert faults.active_plan() is plan  # cached per (spec, seed) pair

    monkeypatch.setenv(faults.FAULTS_SEED_ENV_VAR, "9")
    assert faults.active_plan().seed == 9

    monkeypatch.setenv(faults.FAULTS_SEED_ENV_VAR, "not-a-seed")
    with pytest.raises(faults.FaultPlanError, match="REPRO_FAULTS_SEED"):
        faults.active_plan()


# -- map_shards: retry, rebuild, serial fallback ---------------------------------


def _double(value):
    return value * 2


def _nap(seconds):
    import time

    time.sleep(seconds)
    return seconds


def test_map_shards_retries_transient_worker_faults(monkeypatch):
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "shard_run:raise:0.5")
    stats = {}
    results = map_shards(
        _double, range(16), workers=4, executor="thread", retries=4, stats=stats
    )
    assert results == [value * 2 for value in range(16)]
    assert stats["failures"] > 0
    assert stats["retried"] > 0
    assert stats["attempt_rounds"] >= 2


def test_map_shards_poisoned_shards_fall_back_to_serial(monkeypatch):
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "shard_run:raise:1")
    stats = {}
    results = map_shards(
        _double, range(8), workers=4, executor="thread", retries=1, stats=stats
    )
    # Every pooled attempt fails; the serial fallback (trusted, no fault
    # point) still completes every payload correctly.
    assert results == [value * 2 for value in range(8)]
    assert stats["attempt_rounds"] == 2  # retries + 1
    assert stats["serial_fallbacks"] == 8


def test_map_shards_rebuilds_a_pool_after_a_killed_worker(monkeypatch):
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "shard_run:kill:0.4")
    stats = {}
    results = map_shards(
        _double, range(8), workers=2, executor="process", retries=3, stats=stats
    )
    assert results == [value * 2 for value in range(8)]
    assert stats["failures"] > 0
    assert stats["pool_rebuilds"] >= 1


def test_map_shards_timeout_abandons_the_stuck_pool(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "0.05")
    stats = {}
    results = map_shards(
        _nap, [0.4, 0.4], workers=2, executor="thread", retries=0, stats=stats
    )
    assert results == [0.4, 0.4]  # serial fallback finished the work
    assert stats["pool_rebuilds"] >= 1
    assert stats["serial_fallbacks"] == 2


def test_map_shards_inline_path_is_never_injected(monkeypatch):
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "shard_run:raise:1")
    stats = {}
    # workers=1 runs in-process: trusted execution, no fault point.
    assert map_shards(_double, range(4), workers=1, stats=stats) == [0, 2, 4, 6]
    assert stats["failures"] == 0 and stats["serial_fallbacks"] == 0


def test_retry_backoff_is_deterministic_exponential_and_jittered():
    delays = [retry_backoff_seconds(a, seed=7, label="corpus") for a in range(6)]
    assert delays == [retry_backoff_seconds(a, seed=7, label="corpus") for a in range(6)]
    for attempt, delay in enumerate(delays):
        base = min(BACKOFF_CAP_SECONDS, BACKOFF_BASE_SECONDS * 2**attempt)
        assert 0.5 * base <= delay < 1.5 * base
    assert retry_backoff_seconds(0, seed=8, label="corpus") != delays[0]
    assert retry_backoff_seconds(0, seed=7, label="mine") != delays[0]


# -- the corpus engine under shard faults ----------------------------------------


@pytest.mark.parametrize(
    "plan, recovered_by",
    [
        ("shard_run:raise:0.3", "retried"),
        ("shard_run:kill:0.2", "pool_rebuilds"),
        ("shard_run:raise:1", "serial_fallbacks"),
    ],
)
def test_corpus_is_byte_identical_under_shard_faults(
    monkeypatch, baseline_digest, plan, recovered_by
):
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, plan)
    engine = CorpusEngine(**TINY, min_records_per_worker=1)
    rebuilt = engine.build(workers=4, executor="process")
    stats = engine.last_plan["faults"]
    assert stats["failures"] > 0, stats
    assert stats[recovered_by] > 0, stats
    assert _corpus_digest(rebuilt) == baseline_digest


# -- gateway worker supervision --------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_gateway_recovers_from_worker_faults_byte_identically(
    monkeypatch, corpus, fitted, workers
):
    detector, table, batch_verdicts = fitted
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "worker_classify:raise:0.3")
    router = DeviceRouter.from_table(table, workers)
    with DetectionGateway(detector, router=router) as gateway:
        result = GatewayReplayDriver(gateway, batch_size=256).replay(corpus.bot_store)
        health = gateway.health
    assert health.total_worker_failures > 0
    # An injected fault fires before any state mutates, so every failure
    # is recovered by one rebuild and nothing is dead-lettered.
    assert health.worker_rebuilds == health.total_worker_failures
    assert not health.dead_letters
    assert result.verdicts == batch_verdicts
    assert result.health["total_worker_failures"] == health.total_worker_failures


def test_poisoned_row_group_is_dead_lettered_not_fatal(monkeypatch, corpus, fitted):
    detector, table, _verdicts = fitted
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "worker_classify:raise:1")
    router = DeviceRouter.from_table(table, 2)
    with DetectionGateway(detector, router=router) as gateway:
        result = GatewayReplayDriver(gateway, batch_size=256).replay(corpus.bot_store)
        health = gateway.health
    # Every group exhausts its attempt budget: the replay still completes,
    # and the health report accounts for every missing row.
    assert health.dead_letters
    assert result.verdicts == {}
    assert sum(len(entry["rows"]) for entry in health.dead_letters) == result.rows
    assert health.last_error is not None


@pytest.mark.parametrize("refresh_mode", ["background", "sync"])
def test_failed_refresh_keeps_the_deployed_list(
    monkeypatch, corpus, fitted, refresh_mode
):
    detector, _table, _verdicts = fitted
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "refresh_mine:raise:1")
    refresher = FilterListRefresher(
        detector.miner, interval_days=20.0, window_rows=2_000
    )
    with DetectionGateway(
        detector, workers=2, refresher=refresher, refresh_mode=refresh_mode
    ) as gateway:
        faulty = GatewayReplayDriver(gateway, batch_size=256).replay(corpus.bot_store)
        health = gateway.health
    assert health.refresh_failures > 0
    assert not faulty.refreshes  # no re-mine ever deployed

    monkeypatch.delenv(faults.FAULTS_ENV_VAR)
    with DetectionGateway(detector, workers=2) as gateway:
        frozen = GatewayReplayDriver(gateway, batch_size=256).replay(corpus.bot_store)
    # The stream kept scoring with the fitted list throughout: identical
    # to a refresher-free run.
    assert verdicts_digest(faulty.verdicts) == verdicts_digest(frozen.verdicts)


def test_health_report_roundtrips_through_json(monkeypatch, corpus, fitted):
    from repro.serve import GatewayHealth

    detector, table, _verdicts = fitted
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "worker_classify:raise:0.3")
    router = DeviceRouter.from_table(table, 2)
    with DetectionGateway(detector, router=router) as gateway:
        GatewayReplayDriver(gateway, batch_size=256).replay(corpus.bot_store)
        document = json.loads(json.dumps(gateway.health.to_dict()))
    restored = GatewayHealth.from_dict(document)
    assert restored.total_worker_failures == document["total_worker_failures"]
    assert restored.worker_rebuilds == document["worker_rebuilds"]


# -- crash-safe cache writes -----------------------------------------------------


def test_torn_archive_write_never_publishes_a_cache_entry(
    monkeypatch, tmp_path, corpus
):
    cache = CorpusCache(tmp_path / "cache")
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "cache_write:truncate:1")
    with pytest.raises(faults.InjectedFault):
        cache.store("tamper", corpus)
    # The torn write left nothing behind: no entry, no staging debris.
    assert not cache.has("tamper")
    assert not list((tmp_path / "cache").iterdir())

    monkeypatch.delenv(faults.FAULTS_ENV_VAR)
    cache.store("tamper", corpus)
    assert cache.has("tamper")
    reloaded = cache.load("tamper")
    assert reloaded is not None and len(reloaded.store) == len(corpus.store)


def test_build_or_load_survives_a_failed_cache_store(monkeypatch, tmp_path):
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, "cache_write:truncate:1")
    built, status = build_or_load_corpus(
        **TINY, workers=1, cache=tmp_path / "cache"
    )
    # The archive write failed, but caching is an optimisation: the build
    # itself must come back intact.
    assert status == "miss"
    assert len(built.store) > 0
    assert not list((tmp_path / "cache").glob("*/meta.json"))  # nothing published
