"""Documentation integrity: every relative link in the docs resolves.

Wraps ``tools/check_doc_links.py`` (what CI's docs job runs) so a broken
cross-reference between README, ``docs/*.md`` and the files they point at
fails the tier-1 suite too, not just the docs job.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_doc_links import check_file, iter_markdown_files  # noqa: E402


def test_readme_exists_with_required_sections():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for needle in ("repro corpus", "repro pipeline", "repro stream",
                   "repro serve", "repro bench", "REPRO_SCALE", "REPRO_WORKERS"):
        assert needle in readme, f"README.md is missing {needle!r}"


@pytest.mark.parametrize(
    "markdown",
    [str(p.relative_to(REPO_ROOT)) for p in
     iter_markdown_files([str(REPO_ROOT / "README.md"), str(REPO_ROOT / "docs")])],
)
def test_no_dead_relative_links(markdown):
    dead = check_file(REPO_ROOT / markdown)
    assert not dead, f"{markdown} has dead links: {dead}"


def test_core_docs_exist():
    for name in ("architecture.md", "corpus.md", "detection.md",
                 "streaming.md", "serving.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"
