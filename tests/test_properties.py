"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, strategies as st

from repro.core.rules import FilterList, InconsistencyRule
from repro.core.temporal import TemporalInconsistencyDetector
from repro.fingerprint.attributes import Attribute, format_resolution, parse_resolution
from repro.fingerprint.categories import AttributeCategory
from repro.fingerprint.fingerprint import Fingerprint, fingerprint_distance
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.network.headers import accept_language_for, parse_accept_language
from repro.reporting.tables import format_percent, format_table

# -- strategies --------------------------------------------------------------------

_resolutions = st.tuples(st.integers(1, 8000), st.integers(1, 8000))

_attribute_values = st.fixed_dictionaries(
    {},
    optional={
        Attribute.UA_DEVICE: st.sampled_from(["iPhone", "iPad", "Mac", "Windows PC", "SM-A515F"]),
        Attribute.PLATFORM: st.sampled_from(["Win32", "MacIntel", "iPhone", "Linux x86_64", "Linux armv8l"]),
        Attribute.HARDWARE_CONCURRENCY: st.integers(1, 64),
        Attribute.DEVICE_MEMORY: st.sampled_from([0.5, 1.0, 2.0, 4.0, 8.0]),
        Attribute.SCREEN_RESOLUTION: _resolutions,
        Attribute.TOUCH_SUPPORT: st.sampled_from(["None", "touchEvent/touchStart"]),
        Attribute.MAX_TOUCH_POINTS: st.integers(0, 10),
        Attribute.WEBDRIVER: st.booleans(),
        Attribute.PLUGINS: st.lists(
            st.sampled_from(["PDF Viewer", "Chrome PDF Viewer", "WebKit built-in PDF"]),
            max_size=3,
            unique=True,
        ).map(tuple),
        Attribute.TIMEZONE: st.sampled_from(["America/Los_Angeles", "Europe/Paris", "Asia/Shanghai", "UTC"]),
    },
)

_fingerprints = _attribute_values.map(Fingerprint)


# -- Fingerprint invariants -----------------------------------------------------------


@given(_fingerprints)
def test_fingerprint_round_trip(fingerprint):
    rebuilt = Fingerprint.from_dict(fingerprint.to_dict())
    assert rebuilt == fingerprint
    assert rebuilt.stable_hash() == fingerprint.stable_hash()


@given(_fingerprints)
def test_fingerprint_distance_to_self_is_zero(fingerprint):
    assert fingerprint_distance(fingerprint, fingerprint) == 0


@given(_fingerprints, _fingerprints)
def test_fingerprint_distance_is_symmetric(left, right):
    assert fingerprint_distance(left, right) == fingerprint_distance(right, left)


@given(_fingerprints, st.integers(1, 64))
def test_fingerprint_replace_changes_one_attribute(fingerprint, cores):
    altered = fingerprint.replace(hardware_concurrency=cores)
    assert altered[Attribute.HARDWARE_CONCURRENCY] == cores
    assert fingerprint_distance(fingerprint, altered) <= 1


@given(_resolutions)
def test_resolution_format_parse_round_trip(resolution):
    assert parse_resolution(format_resolution(resolution)) == resolution


# -- filter-list invariants --------------------------------------------------------------


_rules = st.builds(
    InconsistencyRule,
    category=st.sampled_from(list(AttributeCategory)),
    attribute_a=st.sampled_from([Attribute.UA_DEVICE, Attribute.PLATFORM, Attribute.UA_BROWSER]),
    value_a=st.sampled_from(["iPhone", "Win32", "Mobile Safari", "Mac"]),
    attribute_b=st.sampled_from([Attribute.SCREEN_RESOLUTION, Attribute.VENDOR, Attribute.MAX_TOUCH_POINTS]),
    value_b=st.sampled_from(["1920x1080", "Google Inc.", 0, 10]),
    support=st.integers(0, 1000),
)


@given(st.lists(_rules, max_size=30))
def test_filter_list_deduplicates_by_key(rules):
    filter_list = FilterList(rules)
    assert len(filter_list) == len({rule.key for rule in rules})


@given(st.lists(_rules, max_size=20), _fingerprints)
def test_filter_list_matches_agrees_with_any_rule(rules, fingerprint):
    filter_list = FilterList(rules)
    expected = any(rule.matches(fingerprint) for rule in rules)
    assert filter_list.matches(fingerprint) == expected


@given(_rules)
def test_rule_serialisation_round_trip(rule):
    assert InconsistencyRule.from_dict(rule.to_dict()) == rule


@given(st.lists(_rules, max_size=20))
def test_filter_list_json_round_trip(rules):
    filter_list = FilterList(rules)
    loaded = FilterList.from_json(filter_list.to_json())
    assert {rule.key for rule in loaded} == {rule.key for rule in filter_list}


# -- temporal detector invariants --------------------------------------------------------------


@given(st.lists(st.sampled_from(["Win32", "MacIntel", "Linux x86_64"]), min_size=1, max_size=20))
def test_temporal_detector_flags_at_most_changes(platforms):
    detector = TemporalInconsistencyDetector()
    flags = 0
    for platform in platforms:
        flags += len(
            detector.observe(Fingerprint({Attribute.PLATFORM: platform}), cookie="c", ip_address=None)
        )
    distinct = len(set(platforms))
    assert flags == max(0, distinct - 1)


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
def test_temporal_detector_never_flags_constant_stream(keys):
    detector = TemporalInconsistencyDetector()
    fingerprint = Fingerprint({Attribute.PLATFORM: "Win32", Attribute.HARDWARE_CONCURRENCY: 8})
    for key in keys:
        assert detector.observe(fingerprint, cookie=key, ip_address=None) == []


# -- metrics invariants ------------------------------------------------------------------------


@given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
def test_accuracy_of_perfect_prediction_is_one(labels):
    assert accuracy_score(labels, labels) == 1.0


@given(
    st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=200)
)
def test_confusion_matrix_totals_and_accuracy(pairs):
    y_true = [true for true, _pred in pairs]
    y_pred = [pred for _true, pred in pairs]
    matrix = confusion_matrix(y_true, y_pred)
    assert matrix.total == len(pairs)
    assert matrix.accuracy == accuracy_score(y_true, y_pred)
    assert 0.0 <= matrix.precision <= 1.0
    assert 0.0 <= matrix.recall <= 1.0


# -- header / reporting invariants ----------------------------------------------------------------


@given(st.lists(st.sampled_from(["en-US", "en", "fr-FR", "de-DE", "es-MX"]), min_size=1, max_size=5, unique=True))
def test_accept_language_round_trip(languages):
    assert parse_accept_language(accept_language_for(tuple(languages))) == tuple(languages)


@given(st.floats(0.0, 1.0))
def test_format_percent_bounds(value):
    text = format_percent(value)
    assert text.endswith("%")
    assert 0.0 <= float(text[:-1]) <= 100.0


@given(
    st.lists(st.tuples(st.text(max_size=8), st.integers(0, 10 ** 6)), min_size=1, max_size=10)
)
def test_format_table_has_row_per_entry(rows):
    table = format_table(["name", "count"], rows)
    # header + separator + one line per row
    assert len(table.splitlines()) == 2 + len(rows)
