"""Unit tests for the device catalogue and screen knowledge."""

import numpy as np
import pytest

from repro.devices.catalog import DeviceCatalog, build_default_catalog
from repro.devices.profiles import CHROMIUM_PDF_PLUGINS, TOUCH_EVENTS, TOUCH_NONE
from repro.devices.screens import (
    IPHONE_RESOLUTIONS,
    is_real_ipad_resolution,
    is_real_iphone_resolution,
    is_real_resolution_for_device,
)
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.useragent import parse_user_agent


def test_default_catalog_nonempty(catalog):
    assert len(catalog) >= 15


def test_profile_names_unique():
    profiles = build_default_catalog()
    assert len({profile.name for profile in profiles}) == len(profiles)


def test_duplicate_names_rejected():
    profile = build_default_catalog()[0]
    with pytest.raises(ValueError):
        DeviceCatalog([profile, profile])


def test_empty_catalog_rejected():
    with pytest.raises(ValueError):
        DeviceCatalog([])


def test_get_by_name(catalog):
    assert catalog.get("iphone-14").ua_device == "iPhone"
    with pytest.raises(KeyError):
        catalog.get("does-not-exist")


def test_by_device_family(catalog):
    iphones = catalog.by_device("iPhone")
    assert iphones and all(profile.ua_device == "iPhone" for profile in iphones)


def test_mobile_and_desktop_split(catalog):
    mobile = catalog.mobile_profiles()
    desktop = catalog.desktop_profiles()
    assert set(mobile).isdisjoint(desktop)
    assert len(mobile) + len(desktop) == len(catalog)


def test_mobile_profiles_have_touch_and_no_plugins(catalog):
    for profile in catalog.mobile_profiles():
        if profile.ua_device in ("iPhone", "iPad") or profile.ua_os == "Android":
            assert profile.max_touch_points >= 1
            assert profile.plugins == ()


def test_desktop_profiles_expose_pdf_plugins(catalog):
    for profile in catalog.desktop_profiles():
        assert set(profile.plugins) <= set(CHROMIUM_PDF_PLUGINS)
        assert profile.plugins


def test_profile_fingerprint_is_consistent(catalog):
    profile = catalog.get("iphone-14")
    fingerprint = profile.fingerprint()
    assert fingerprint[Attribute.UA_DEVICE] == "iPhone"
    assert fingerprint[Attribute.PLATFORM] == "iPhone"
    assert fingerprint[Attribute.MAX_TOUCH_POINTS] == 5
    assert fingerprint[Attribute.TOUCH_SUPPORT] == TOUCH_EVENTS
    assert is_real_iphone_resolution(fingerprint[Attribute.SCREEN_RESOLUTION])


def test_profile_user_agent_parses_back(catalog):
    for profile in catalog:
        parsed = parse_user_agent(profile.user_agent())
        assert parsed.device == profile.ua_device
        assert parsed.os == profile.ua_os
        assert parsed.browser == profile.ua_browser


def test_profile_fingerprint_overrides(catalog):
    profile = catalog.get("windows-desktop-chrome")
    fingerprint = profile.fingerprint(hardware_concurrency=16, device_memory=32.0)
    assert fingerprint[Attribute.HARDWARE_CONCURRENCY] == 16
    assert fingerprint[Attribute.DEVICE_MEMORY] == 32.0


def test_sampling_respects_catalog(catalog, rng):
    for _ in range(20):
        profile, fingerprint = catalog.sample_fingerprint(rng)
        assert profile in tuple(catalog)
        resolution = fingerprint[Attribute.SCREEN_RESOLUTION]
        assert resolution in profile.screen_resolutions
        assert fingerprint[Attribute.HARDWARE_CONCURRENCY] in profile.hardware_concurrency_options


def test_sampling_weights_prefer_common_devices(catalog):
    rng = np.random.default_rng(0)
    counts = {}
    for _ in range(400):
        profile = catalog.sample(rng)
        counts[profile.name] = counts.get(profile.name, 0) + 1
    # The Windows desktop (weight 6) must be sampled more often than the
    # touch-screen Surface (weight 0.5).
    assert counts.get("windows-desktop-chrome", 0) > counts.get("surface-touch-chrome", 0)


def test_iphone_resolution_set_matches_paper_size():
    assert len(IPHONE_RESOLUTIONS) == 12


def test_real_iphone_resolutions_accepted_in_both_orientations():
    assert is_real_iphone_resolution((390, 844))
    assert is_real_iphone_resolution((844, 390))


def test_fake_iphone_resolutions_rejected():
    assert not is_real_iphone_resolution((1920, 1080))
    assert not is_real_iphone_resolution((847, 476))
    assert not is_real_iphone_resolution((873, 393))


def test_ipad_resolutions():
    assert is_real_ipad_resolution((768, 1024))
    assert not is_real_ipad_resolution((900, 1600))


def test_resolution_check_per_device_family():
    assert is_real_resolution_for_device("iPhone", (390, 844)) is True
    assert is_real_resolution_for_device("iPhone", (1920, 1080)) is False
    assert is_real_resolution_for_device("Mac", (1512, 982)) is True
    assert is_real_resolution_for_device("Mac", (656, 1364)) is False
    assert is_real_resolution_for_device("Windows PC", (1920, 1080)) is True


def test_resolution_check_unknown_android_is_none():
    assert is_real_resolution_for_device("SM-A515F", (412, 892)) is None


def test_resolution_check_android_desktop_geometry_is_false():
    assert is_real_resolution_for_device("SM-A515F", (1920, 1080)) is False


def test_touch_constants():
    assert TOUCH_NONE == "None"
    assert "touch" in TOUCH_EVENTS.lower()
