"""Unit tests for evasion strategies, service profiles and the marketplace."""

import pytest

from repro.bots.marketplace import TOTAL_REQUESTS, build_marketplace, marketplace_by_name
from repro.bots.service import BotDEvasionFlavor, BotServiceProfile
from repro.bots.strategies import (
    FAKE_RESOLUTION_POOL,
    ROTATED_PLATFORMS,
    apply_consistent_device_spoof,
    apply_device_spoof,
    apply_forced_colors,
    apply_low_concurrency,
    apply_memory_rotation,
    apply_platform_rotation,
    apply_plugin_injection,
    apply_server_concurrency,
    apply_timezone,
    apply_touch_spoof,
    apply_webdriver_leak,
    base_bot_fingerprint,
    choose_spoof_target,
    random_resolution,
)
from repro.devices.screens import is_real_iphone_resolution
from repro.fingerprint.attributes import Attribute


# -- strategies --------------------------------------------------------------------


def test_base_bot_fingerprint_shape(rng):
    fingerprint = base_bot_fingerprint(rng)
    assert fingerprint[Attribute.PLATFORM] == "Linux x86_64"
    assert fingerprint[Attribute.PLUGINS] == ()
    assert fingerprint[Attribute.TOUCH_SUPPORT] == "None"
    assert fingerprint[Attribute.WEBDRIVER] is False
    assert fingerprint[Attribute.HARDWARE_CONCURRENCY] >= 8


def test_low_and_server_concurrency(rng):
    base = base_bot_fingerprint(rng)
    assert apply_low_concurrency(base, rng)[Attribute.HARDWARE_CONCURRENCY] < 8
    assert apply_server_concurrency(base, rng)[Attribute.HARDWARE_CONCURRENCY] >= 8


def test_plugin_injection_always_includes_chrome_pdf_viewer(rng):
    for _ in range(20):
        fingerprint = apply_plugin_injection(base_bot_fingerprint(rng), rng)
        assert "Chrome PDF Viewer" in fingerprint[Attribute.PLUGINS]
        assert fingerprint[Attribute.PDF_VIEWER_ENABLED] is True


def test_touch_spoof_claims_touch(rng):
    fingerprint = apply_touch_spoof(base_bot_fingerprint(rng), rng, consistency=0.0)
    assert fingerprint[Attribute.TOUCH_SUPPORT] != "None"
    fingerprint = apply_touch_spoof(base_bot_fingerprint(rng), rng, consistency=1.0)
    assert fingerprint[Attribute.MAX_TOUCH_POINTS] == 5


def test_device_spoof_changes_user_agent_family(rng):
    fingerprint = apply_device_spoof(base_bot_fingerprint(rng), rng, target="iPhone", consistency=0.0)
    assert fingerprint[Attribute.UA_DEVICE] == "iPhone"
    assert fingerprint[Attribute.UA_OS] == "iOS"
    # A zero-consistency spoof leaves the correlated attributes untouched.
    assert fingerprint[Attribute.VENDOR] == "Google Inc."


def test_device_spoof_full_consistency_fixes_correlates(rng):
    fingerprint = apply_device_spoof(base_bot_fingerprint(rng), rng, target="iPhone", consistency=1.0)
    assert fingerprint[Attribute.PLATFORM] == "iPhone"
    assert fingerprint[Attribute.VENDOR].startswith("Apple")
    assert fingerprint[Attribute.MAX_TOUCH_POINTS] == 5
    assert is_real_iphone_resolution(fingerprint[Attribute.SCREEN_RESOLUTION])


def test_consistent_device_spoof_respects_touch_state(rng):
    touchless = apply_consistent_device_spoof(base_bot_fingerprint(rng), rng)
    assert touchless[Attribute.UA_DEVICE] in ("Mac", "Windows PC")
    touchy = apply_consistent_device_spoof(
        apply_touch_spoof(base_bot_fingerprint(rng), rng), rng
    )
    assert touchy[Attribute.UA_DEVICE] not in ("Mac", "Windows PC", "Linux PC")


def test_consistent_device_spoof_preserves_plugins_and_cores(rng):
    base = apply_plugin_injection(apply_low_concurrency(base_bot_fingerprint(rng), rng), rng)
    spoofed = apply_consistent_device_spoof(base, rng)
    assert spoofed[Attribute.PLUGINS] == base[Attribute.PLUGINS]
    assert spoofed[Attribute.HARDWARE_CONCURRENCY] == base[Attribute.HARDWARE_CONCURRENCY]


def test_choose_spoof_target_distribution(rng):
    targets = {choose_spoof_target(rng) for _ in range(200)}
    assert "iPhone" in targets


def test_random_resolution_comes_from_pool(rng):
    for _ in range(50):
        assert random_resolution(rng) in FAKE_RESOLUTION_POOL


def test_fake_resolution_pool_mostly_nonexistent_for_iphone():
    fake = [r for r in FAKE_RESOLUTION_POOL if not is_real_iphone_resolution(r)]
    assert len(fake) / len(FAKE_RESOLUTION_POOL) > 0.7


def test_platform_rotation_uses_pool(rng):
    fingerprint = apply_platform_rotation(base_bot_fingerprint(rng), rng)
    assert fingerprint[Attribute.PLATFORM] in ROTATED_PLATFORMS


def test_memory_rotation_valid_values(rng):
    fingerprint = apply_memory_rotation(base_bot_fingerprint(rng), rng)
    assert fingerprint[Attribute.DEVICE_MEMORY] in (0.5, 1.0, 2.0, 4.0, 8.0)


def test_timezone_forced_colors_webdriver(rng):
    base = base_bot_fingerprint(rng)
    assert apply_timezone(base, "Europe/Paris")[Attribute.TIMEZONE] == "Europe/Paris"
    assert apply_forced_colors(base)[Attribute.FORCED_COLORS] is True
    assert apply_webdriver_leak(base)[Attribute.WEBDRIVER] is True


# -- service profiles -----------------------------------------------------------------


def test_profile_validation_bounds():
    with pytest.raises(ValueError):
        BotServiceProfile(name="X", num_requests=10, datadome_evasion_target=1.5, botd_evasion_target=0.5)
    with pytest.raises(ValueError):
        BotServiceProfile(name="X", num_requests=0, datadome_evasion_target=0.5, botd_evasion_target=0.5)
    with pytest.raises(ValueError):
        BotServiceProfile(
            name="X", num_requests=10, datadome_evasion_target=0.5, botd_evasion_target=0.5, num_workers=0
        )


def test_profile_scaled_requests():
    profile = BotServiceProfile(
        name="X", num_requests=1000, datadome_evasion_target=0.5, botd_evasion_target=0.5
    )
    assert profile.scaled_requests(0.1) == 100
    assert profile.scaled_requests(0.0001) == 1
    with pytest.raises(ValueError):
        profile.scaled_requests(0)


# -- marketplace -----------------------------------------------------------------------


def test_marketplace_has_twenty_services():
    assert len(build_marketplace()) == 20


def test_marketplace_total_matches_paper():
    assert TOTAL_REQUESTS == 507_080


def test_marketplace_by_name_keys():
    by_name = marketplace_by_name()
    assert set(by_name) == {f"S{i}" for i in range(1, 21)}


def test_marketplace_table1_targets_spot_checks():
    by_name = marketplace_by_name()
    assert by_name["S1"].num_requests == 121_500
    assert by_name["S1"].datadome_evasion_target == pytest.approx(0.4401)
    assert by_name["S15"].botd_evasion_target == pytest.approx(1.0)
    assert by_name["S20"].num_requests == 382


def test_marketplace_flavors_follow_paper_findings():
    by_name = marketplace_by_name()
    for name in ("S15", "S18", "S19"):
        assert by_name[name].botd_flavor is BotDEvasionFlavor.PLUGINS
    for name in ("S14", "S20"):
        assert by_name[name].botd_flavor is BotDEvasionFlavor.TOUCH


def test_marketplace_advertised_regions():
    regions = {
        profile.advertised_region
        for profile in build_marketplace()
        if profile.advertised_region is not None
    }
    assert regions == {"United States", "Canada", "Europe", "France"}
