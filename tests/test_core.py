"""Unit tests for FP-Inconsistent: knowledge base, rules, miners, detector."""

import pytest

from repro.core.detector import FPInconsistent
from repro.core.knowledge import DeviceKnowledgeBase
from repro.core.rules import FilterList, InconsistencyRule
from repro.core.spatial import SpatialInconsistencyMiner, SpatialMinerConfig
from repro.core.temporal import TemporalInconsistencyDetector
from repro.devices.catalog import DeviceCatalog
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.categories import AttributeCategory
from repro.fingerprint.fingerprint import Fingerprint


@pytest.fixture(scope="module")
def kb():
    return DeviceKnowledgeBase()


# -- knowledge base ---------------------------------------------------------------


def test_kb_iphone_resolution(kb):
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.SCREEN_RESOLUTION, "390x844") is True
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.SCREEN_RESOLUTION, "1920x1080") is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.SCREEN_RESOLUTION, "847x476") is False


def test_kb_is_symmetric(kb):
    forward = kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.SCREEN_RESOLUTION, "1920x1080")
    backward = kb.is_pair_consistent(Attribute.SCREEN_RESOLUTION, "1920x1080", Attribute.UA_DEVICE, "iPhone")
    assert forward is False and backward is False


def test_kb_touch_rules(kb):
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.TOUCH_SUPPORT, "None") is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "Mac", Attribute.TOUCH_SUPPORT, "touchEvent/touchStart") is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "Windows PC", Attribute.TOUCH_SUPPORT, "touchEvent/touchStart") is None


def test_kb_max_touch_points(kb):
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.MAX_TOUCH_POINTS, 0) is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.MAX_TOUCH_POINTS, 5) is True
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "Mac", Attribute.MAX_TOUCH_POINTS, 10) is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "SM-A515F", Attribute.MAX_TOUCH_POINTS, 0) is False


def test_kb_hardware_concurrency(kb):
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.HARDWARE_CONCURRENCY, 4) is True
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.HARDWARE_CONCURRENCY, 3) is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.HARDWARE_CONCURRENCY, 32) is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "Mac", Attribute.HARDWARE_CONCURRENCY, 48) is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "Pixel 2", Attribute.HARDWARE_CONCURRENCY, 32) is False


def test_kb_color_depth_and_gamut(kb):
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.COLOR_DEPTH, 16) is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.COLOR_DEPTH, 32) is True
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "SM-T875", Attribute.COLOR_GAMUT, "p3, rec2020") is False


def test_kb_plugins_on_mobile(kb):
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.PLUGINS, "Chrome PDF Viewer") is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.PLUGINS, "(none)") is True
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "Windows PC", Attribute.PLUGINS, "Chrome PDF Viewer") is None


def test_kb_browser_os_and_vendor(kb):
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Safari", Attribute.UA_OS, "Linux") is False
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Safari", Attribute.UA_OS, "Windows") is False
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Samsung Internet", Attribute.UA_OS, "Linux") is False
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Mobile Safari", Attribute.VENDOR, "Google Inc.") is False
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Chrome Mobile", Attribute.VENDOR, "Apple Computer, Inc.") is False
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Chrome", Attribute.VENDOR, "Google Inc.") is True


def test_kb_browser_platform(kb):
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Mobile Safari", Attribute.PLATFORM, "Linux x86_64") is False
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Chrome Mobile", Attribute.PLATFORM, "Win32") is False
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Chrome Mobile iOS", Attribute.PLATFORM, "Win32") is False
    assert kb.is_pair_consistent(Attribute.UA_BROWSER, "Mobile Safari", Attribute.PLATFORM, "iPhone") is True


def test_kb_platform_rules(kb):
    assert kb.is_pair_consistent(Attribute.PLATFORM, "Linux armv5tejl", Attribute.VENDOR, "Apple Computer, Inc.") is False
    assert kb.is_pair_consistent(Attribute.PLATFORM, "Win32", Attribute.VENDOR, "Apple Computer, Inc.") is False
    assert kb.is_pair_consistent(Attribute.PLATFORM, "MacIntel", Attribute.VENDOR, "Apple Computer, Inc.") is True
    assert kb.is_pair_consistent(Attribute.PLATFORM, "Linux armv8l", Attribute.UA_OS, "Mac OS X") is False
    assert kb.is_pair_consistent(Attribute.PLATFORM, "Linux i686", Attribute.UA_OS, "Mac OS X") is False
    assert kb.is_pair_consistent(Attribute.PLATFORM, "Win32", Attribute.UA_OS, "Windows") is True


def test_kb_location_rules(kb):
    assert kb.is_pair_consistent(Attribute.IP_COUNTRY, "France", Attribute.TIMEZONE, "America/Los_Angeles") is False
    assert kb.is_pair_consistent(Attribute.IP_COUNTRY, "France", Attribute.TIMEZONE, "Europe/Berlin") is True
    assert kb.is_pair_consistent(Attribute.IP_COUNTRY, "France", Attribute.TIMEZONE, "Atlantis/Deep") is None


def test_kb_unknown_and_none_values(kb):
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.CANVAS, "xyz") is None
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, None, Attribute.TOUCH_SUPPORT, "None") is None


def test_kb_device_memory_rules(kb):
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "iPhone", Attribute.DEVICE_MEMORY, 3.0) is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "SM-A515F", Attribute.DEVICE_MEMORY, 1.0) is False
    assert kb.is_pair_consistent(Attribute.UA_DEVICE, "SM-A515F", Attribute.DEVICE_MEMORY, 4.0) is True


def test_kb_catalog_fingerprints_never_inconsistent(kb):
    """No real catalogue configuration may be judged impossible."""

    from repro.fingerprint.categories import AttributeCategory, category_pairs

    catalog = DeviceCatalog()
    for profile in catalog:
        fingerprint = profile.fingerprint()
        for category in AttributeCategory:
            for attribute_a, attribute_b in category_pairs(category):
                verdict = kb.is_pair_consistent(
                    attribute_a,
                    fingerprint.value_for_grouping(attribute_a),
                    attribute_b,
                    fingerprint.value_for_grouping(attribute_b),
                )
                assert verdict is not False, (profile.name, attribute_a, attribute_b)


def test_kb_expected_value_count(kb):
    count = kb.expected_value_count(Attribute.UA_DEVICE, "iPhone", Attribute.SCREEN_RESOLUTION)
    assert count is not None and count >= 2
    assert kb.expected_value_count(Attribute.UA_DEVICE, "Nokia 3310", Attribute.SCREEN_RESOLUTION) is None


# -- rules and filter lists ---------------------------------------------------------------


def _iphone_rule(support=10):
    return InconsistencyRule(
        category=AttributeCategory.SCREEN,
        attribute_a=Attribute.UA_DEVICE,
        value_a="iPhone",
        attribute_b=Attribute.SCREEN_RESOLUTION,
        value_b="1920x1080",
        support=support,
    )


def test_rule_matches_fingerprint():
    rule = _iphone_rule()
    matching = Fingerprint({Attribute.UA_DEVICE: "iPhone", Attribute.SCREEN_RESOLUTION: (1920, 1080)})
    not_matching = Fingerprint({Attribute.UA_DEVICE: "iPhone", Attribute.SCREEN_RESOLUTION: (390, 844)})
    assert rule.matches(matching)
    assert not rule.matches(not_matching)
    assert "iPhone" in rule.describe()


def test_rule_serialisation_round_trip():
    rule = _iphone_rule()
    assert InconsistencyRule.from_dict(rule.to_dict()) == rule


def test_rule_key_is_order_independent():
    rule = _iphone_rule()
    swapped = InconsistencyRule(
        category=AttributeCategory.SCREEN,
        attribute_a=Attribute.SCREEN_RESOLUTION,
        value_a="1920x1080",
        attribute_b=Attribute.UA_DEVICE,
        value_b="iPhone",
    )
    assert rule.key == swapped.key


def test_filter_list_deduplicates_and_matches():
    filter_list = FilterList([_iphone_rule()])
    assert not filter_list.add(_iphone_rule(support=99))
    assert len(filter_list) == 1
    fingerprint = Fingerprint({Attribute.UA_DEVICE: "iPhone", Attribute.SCREEN_RESOLUTION: (1920, 1080)})
    assert filter_list.matches(fingerprint)
    assert filter_list.first_match(fingerprint) is not None
    assert len(filter_list.all_matches(fingerprint)) == 1
    assert _iphone_rule() in filter_list


def test_filter_list_views_and_persistence(tmp_path):
    other_rule = InconsistencyRule(
        category=AttributeCategory.BROWSER,
        attribute_a=Attribute.UA_BROWSER,
        value_a="Mobile Safari",
        attribute_b=Attribute.VENDOR,
        value_b="Google Inc.",
        support=50,
    )
    filter_list = FilterList([_iphone_rule(support=5), other_rule])
    assert set(filter_list.by_category()) == {AttributeCategory.SCREEN, AttributeCategory.BROWSER}
    assert filter_list.top_rules(1)[0] == other_rule
    assert len(filter_list.by_attribute_pair()) == 2
    path = tmp_path / "rules.json"
    filter_list.save(path)
    loaded = FilterList.load(path)
    assert len(loaded) == 2
    assert loaded.matches(Fingerprint({Attribute.UA_BROWSER: "Mobile Safari", Attribute.VENDOR: "Google Inc."}))


def test_filter_list_merge():
    first = FilterList([_iphone_rule()])
    second = FilterList(
        [
            InconsistencyRule(
                category=AttributeCategory.DEVICE,
                attribute_a=Attribute.UA_DEVICE,
                value_a="Mac",
                attribute_b=Attribute.HARDWARE_CONCURRENCY,
                value_b=48,
            )
        ]
    )
    merged = first.merge(second)
    assert len(merged) == 2 and len(first) == 1


# -- spatial miner ----------------------------------------------------------------------------


def _mining_fingerprints():
    """A corpus where many "iPhones" report impossible resolutions."""

    fingerprints = []
    for index in range(60):
        fingerprints.append(
            Fingerprint(
                {
                    Attribute.UA_DEVICE: "iPhone",
                    Attribute.SCREEN_RESOLUTION: (1920, 1080) if index % 2 == 0 else (847, 476),
                    Attribute.TOUCH_SUPPORT: "None",
                    Attribute.MAX_TOUCH_POINTS: 0,
                    Attribute.UA_OS: "iOS",
                    Attribute.UA_BROWSER: "Mobile Safari",
                    Attribute.VENDOR: "Google Inc.",
                    Attribute.PLATFORM: "Linux x86_64",
                    Attribute.HARDWARE_CONCURRENCY: 16,
                    Attribute.DEVICE_MEMORY: 8.0,
                }
            )
        )
    for index in range(40):
        fingerprints.append(
            Fingerprint(
                {
                    Attribute.UA_DEVICE: "Windows PC",
                    Attribute.SCREEN_RESOLUTION: (1920, 1080),
                    Attribute.TOUCH_SUPPORT: "None",
                    Attribute.MAX_TOUCH_POINTS: 0,
                    Attribute.UA_OS: "Windows",
                    Attribute.UA_BROWSER: "Chrome",
                    Attribute.VENDOR: "Google Inc.",
                    Attribute.PLATFORM: "Win32",
                    Attribute.HARDWARE_CONCURRENCY: 8,
                    Attribute.DEVICE_MEMORY: 8.0,
                }
            )
        )
    return fingerprints


def test_spatial_miner_finds_iphone_rules():
    # The synthetic corpus only has two distinct iPhone resolutions, so the
    # configuration-count inflation pre-filter is disabled for this test.
    miner = SpatialInconsistencyMiner(
        config=SpatialMinerConfig(min_support=5, min_value_support=10, inflation_factor=0)
    )
    filter_list = miner.mine(_mining_fingerprints())
    described = [rule.describe() for rule in filter_list]
    assert any("1920x1080" in text and "iPhone" in text for text in described)
    assert any("touch_support" in text and "iPhone" in text for text in described)
    assert any("Mobile Safari" in text and "Google Inc." in text for text in described)


def test_spatial_miner_does_not_flag_consistent_configurations():
    miner = SpatialInconsistencyMiner(
        config=SpatialMinerConfig(min_support=5, min_value_support=10, inflation_factor=0)
    )
    filter_list = miner.mine(_mining_fingerprints())
    windows = Fingerprint(
        {
            Attribute.UA_DEVICE: "Windows PC",
            Attribute.SCREEN_RESOLUTION: (1920, 1080),
            Attribute.UA_BROWSER: "Chrome",
            Attribute.VENDOR: "Google Inc.",
            Attribute.PLATFORM: "Win32",
            Attribute.UA_OS: "Windows",
            Attribute.TOUCH_SUPPORT: "None",
            Attribute.MAX_TOUCH_POINTS: 0,
        }
    )
    assert not filter_list.matches(windows)


def test_spatial_miner_min_support_guard():
    config = SpatialMinerConfig(min_support=1000, min_value_support=1000)
    miner = SpatialInconsistencyMiner(config=config)
    assert len(miner.mine(_mining_fingerprints())) == 0


def test_spatial_miner_config_validation():
    with pytest.raises(ValueError):
        SpatialMinerConfig(min_support=0)
    with pytest.raises(ValueError):
        SpatialMinerConfig(inflation_factor=-1)
    with pytest.raises(ValueError):
        SpatialMinerConfig(max_values_per_pair=0)


def test_pair_statistics_counts():
    miner = SpatialInconsistencyMiner()
    stats = miner.pair_statistics(
        _mining_fingerprints(), AttributeCategory.SCREEN, Attribute.UA_DEVICE, Attribute.SCREEN_RESOLUTION
    )
    counts = dict(stats.distinct_counts())
    assert counts["iPhone"] == 2
    assert counts["Windows PC"] == 1
    assert stats.value_support("iPhone") == 60


# -- temporal detector -----------------------------------------------------------------------


def test_temporal_detector_flags_attribute_change():
    detector = TemporalInconsistencyDetector()
    first = Fingerprint({Attribute.PLATFORM: "Win32", Attribute.HARDWARE_CONCURRENCY: 4})
    second = Fingerprint({Attribute.PLATFORM: "MacIntel", Attribute.HARDWARE_CONCURRENCY: 4})
    assert detector.observe(first, cookie="c1", ip_address="1.1.1.1") == []
    flags = detector.observe(second, cookie="c1", ip_address="1.1.1.1")
    assert any(flag.attribute is Attribute.PLATFORM for flag in flags)
    assert "c1" in flags[0].describe()


def test_temporal_detector_same_value_not_flagged():
    detector = TemporalInconsistencyDetector()
    fingerprint = Fingerprint({Attribute.PLATFORM: "Win32"})
    detector.observe(fingerprint, cookie="c1", ip_address=None)
    assert detector.observe(fingerprint, cookie="c1", ip_address=None) == []


def test_temporal_detector_distinct_cookies_independent():
    detector = TemporalInconsistencyDetector()
    detector.observe(Fingerprint({Attribute.PLATFORM: "Win32"}), cookie="c1", ip_address=None)
    assert detector.observe(Fingerprint({Attribute.PLATFORM: "MacIntel"}), cookie="c2", ip_address=None) == []


def test_temporal_detector_ip_timezone_tolerance():
    detector = TemporalInconsistencyDetector()
    zones = ["America/New_York", "Europe/Paris", "Asia/Shanghai"]
    flags = []
    for zone in zones:
        flags.extend(
            detector.observe(Fingerprint({Attribute.TIMEZONE: zone}), cookie=None, ip_address="9.9.9.9")
        )
    # Third distinct zone for the same IP exceeds the tolerance of 2.
    assert len(flags) == 1 and flags[0].key_kind == "ip"


def test_temporal_detector_reset_and_validation():
    with pytest.raises(ValueError):
        TemporalInconsistencyDetector(cookie_tolerance=0)
    detector = TemporalInconsistencyDetector()
    detector.observe(Fingerprint({Attribute.PLATFORM: "Win32"}), cookie="c1", ip_address=None)
    detector.reset()
    assert detector.observe(Fingerprint({Attribute.PLATFORM: "MacIntel"}), cookie="c1", ip_address=None) == []


# -- combined detector --------------------------------------------------------------------------


def test_fpinconsistent_check_fingerprint():
    detector = FPInconsistent(filter_list=FilterList([_iphone_rule()]))
    inconsistent = Fingerprint({Attribute.UA_DEVICE: "iPhone", Attribute.SCREEN_RESOLUTION: (1920, 1080)})
    consistent = Fingerprint({Attribute.UA_DEVICE: "iPhone", Attribute.SCREEN_RESOLUTION: (390, 844)})
    assert detector.check_fingerprint(inconsistent) is not None
    assert detector.check_fingerprint(consistent) is None
